package calib

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"

	"wattio/internal/device"
)

// ModelVersion guards fitted-model files against silently reading
// future formats, mirroring core's planning-model persistence.
const ModelVersion = 1

// Coeffs is one power state's fitted energy model: every IO costs a
// per-op plus per-byte energy in its direction, and the device burns
// StaticW continuously. All coefficients are non-negative by
// construction (the NNLS fit) and by validation (a loaded file).
type Coeffs struct {
	ReadOpJ    float64
	ReadByteJ  float64
	WriteOpJ   float64
	WriteByteJ float64
	StaticW    float64
}

// Service is one power state's fitted service-time model, per IO
// direction: seconds per op plus seconds per byte at saturation.
type Service struct {
	ReadOpS    float64
	ReadByteS  float64
	WriteOpS   float64
	WriteByteS float64
}

// State is one fitted power state. MaxPowerW carries the mechanical
// descriptor cap (what PowerStates() advertises; governors read it to
// decide whether stepping up fits a budget); it is 0 for classes
// without host-selectable states.
type State struct {
	MaxPowerW float64
	Energy    Coeffs
	Service   Service
}

// Model is a fitted device model: enough coefficients to stand in for
// a mechanistic simulator behind the device.Device interface.
type Model struct {
	// Class is the catalog profile the model was fitted from (and the
	// fleet profile a fitted device serves as).
	Class string
	// DeviceModel is the marketing model string of the source class.
	DeviceModel string
	// Protocol is the host interface of the source class.
	Protocol device.Protocol
	// CapacityBytes is the addressable capacity.
	CapacityBytes int64
	// States holds one fitted entry per power state, ps0 first.
	States []State
}

// modelDoc is the on-disk form. Field names are part of the format.
type modelDoc struct {
	Version       int        `json:"version"`
	Class         string     `json:"class"`
	DeviceModel   string     `json:"device_model"`
	Protocol      string     `json:"protocol"`
	CapacityBytes int64      `json:"capacity_bytes"`
	States        []stateDoc `json:"states"`
}

type stateDoc struct {
	MaxPowerW  float64 `json:"max_power_w"`
	ReadOpJ    float64 `json:"read_op_j"`
	ReadByteJ  float64 `json:"read_byte_j"`
	WriteOpJ   float64 `json:"write_op_j"`
	WriteByteJ float64 `json:"write_byte_j"`
	StaticW    float64 `json:"static_w"`
	ReadOpS    float64 `json:"read_op_s"`
	ReadByteS  float64 `json:"read_byte_s"`
	WriteOpS   float64 `json:"write_op_s"`
	WriteByteS float64 `json:"write_byte_s"`
}

// modelErr builds a validation error naming the offending model path.
func modelErr(path, format string, args ...any) error {
	return fmt.Errorf("calib: %s: %s", path, fmt.Sprintf(format, args...))
}

// coeff checks one named coefficient: finite and non-negative. NaN or
// a negative value would silently corrupt every downstream energy sum,
// so both are rejected with the coefficient's path.
func coeff(path string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return modelErr(path, "non-finite coefficient %v", v)
	}
	if v < 0 {
		return modelErr(path, "negative coefficient %v", v)
	}
	return nil
}

// Validate checks the model's semantic invariants: the same checks a
// decoded file passes, so a hand-built model and a loaded one meet an
// identical contract.
func (m *Model) Validate() error {
	if m.Class == "" {
		return modelErr("class", "fitted model needs a device class")
	}
	if m.Protocol != device.NVMe && m.Protocol != device.SATA {
		return modelErr("protocol", "unknown protocol %d", int(m.Protocol))
	}
	if m.CapacityBytes <= 0 {
		return modelErr("capacity_bytes", "capacity %d must be positive", m.CapacityBytes)
	}
	if len(m.States) == 0 {
		return modelErr("states", "fitted model needs at least one power state")
	}
	for i, st := range m.States {
		p := fmt.Sprintf("states[%d]", i)
		for _, c := range []struct {
			name string
			v    float64
		}{
			{"max_power_w", st.MaxPowerW},
			{"read_op_j", st.Energy.ReadOpJ},
			{"read_byte_j", st.Energy.ReadByteJ},
			{"write_op_j", st.Energy.WriteOpJ},
			{"write_byte_j", st.Energy.WriteByteJ},
			{"static_w", st.Energy.StaticW},
			{"read_op_s", st.Service.ReadOpS},
			{"read_byte_s", st.Service.ReadByteS},
			{"write_op_s", st.Service.WriteOpS},
			{"write_byte_s", st.Service.WriteByteS},
		} {
			if err := coeff(p+"."+c.name, c.v); err != nil {
				return err
			}
		}
		// A direction with zero per-op and per-byte service time would
		// complete IO in zero virtual time — an infinite-throughput
		// device that livelocks any closed loop driving it.
		if st.Service.ReadOpS == 0 && st.Service.ReadByteS == 0 {
			return modelErr(p+".read_op_s", "read service time is identically zero")
		}
		if st.Service.WriteOpS == 0 && st.Service.WriteByteS == 0 {
			return modelErr(p+".write_op_s", "write service time is identically zero")
		}
	}
	return nil
}

// Encode returns the model's canonical encoding: fixed field order,
// two-space indent, trailing newline. Decode(Encode(m)) round-trips
// exactly, so canonical files can serve as golden inputs.
func (m *Model) Encode() ([]byte, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	doc := modelDoc{
		Version:       ModelVersion,
		Class:         m.Class,
		DeviceModel:   m.DeviceModel,
		Protocol:      m.Protocol.String(),
		CapacityBytes: m.CapacityBytes,
	}
	for _, st := range m.States {
		doc.States = append(doc.States, stateDoc{
			MaxPowerW:  st.MaxPowerW,
			ReadOpJ:    st.Energy.ReadOpJ,
			ReadByteJ:  st.Energy.ReadByteJ,
			WriteOpJ:   st.Energy.WriteOpJ,
			WriteByteJ: st.Energy.WriteByteJ,
			StaticW:    st.Energy.StaticW,
			ReadOpS:    st.Service.ReadOpS,
			ReadByteS:  st.Service.ReadByteS,
			WriteOpS:   st.Service.WriteOpS,
			WriteByteS: st.Service.WriteByteS,
		})
	}
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Save writes the model's canonical encoding.
func (m *Model) Save(w io.Writer) error {
	b, err := m.Encode()
	if err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// Decode reads a fitted-model document with the same hardening as
// core.Load: unknown fields, trailing data, version skew, and invalid
// coefficients (NaN, negative) are all errors naming the offending
// path — a malformed file must never load as a silently wrong device.
func Decode(data []byte) (*Model, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var doc modelDoc
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("calib: decoding fitted model: %w", err)
	}
	if _, err := dec.Token(); err != io.EOF {
		return nil, fmt.Errorf("calib: trailing data after fitted-model document")
	}
	if doc.Version != ModelVersion {
		return nil, fmt.Errorf("calib: fitted-model version %d, this build reads %d", doc.Version, ModelVersion)
	}
	m := &Model{
		Class:         doc.Class,
		DeviceModel:   doc.DeviceModel,
		CapacityBytes: doc.CapacityBytes,
	}
	switch doc.Protocol {
	case device.NVMe.String():
		m.Protocol = device.NVMe
	case device.SATA.String():
		m.Protocol = device.SATA
	default:
		return nil, modelErr("protocol", "unknown protocol %q", doc.Protocol)
	}
	for _, st := range doc.States {
		m.States = append(m.States, State{
			MaxPowerW: st.MaxPowerW,
			Energy: Coeffs{
				ReadOpJ:    st.ReadOpJ,
				ReadByteJ:  st.ReadByteJ,
				WriteOpJ:   st.WriteOpJ,
				WriteByteJ: st.WriteByteJ,
				StaticW:    st.StaticW,
			},
			Service: Service{
				ReadOpS:    st.ReadOpS,
				ReadByteS:  st.ReadByteS,
				WriteOpS:   st.WriteOpS,
				WriteByteS: st.WriteByteS,
			},
		})
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	return m, nil
}

// Load reads a fitted model written by Save.
func Load(r io.Reader) (*Model, error) {
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return Decode(data)
}
