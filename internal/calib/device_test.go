package calib

import (
	"math"
	"testing"
	"time"

	"wattio/internal/device"
	"wattio/internal/sim"
)

// simpleModel returns hand-picked coefficients that make service times
// and energies easy to compute exactly: 1 W static, 1 ms + 1 ns/KiB
// writes at 2 J/op, 0.5 ms reads at 1 J/op.
func simpleModel() *Model {
	return &Model{
		Class:         "TEST",
		DeviceModel:   "Test Fitted",
		Protocol:      device.NVMe,
		CapacityBytes: 1 << 30,
		States: []State{{
			MaxPowerW: 10,
			Energy:    Coeffs{ReadOpJ: 1, WriteOpJ: 2, StaticW: 1},
			Service:   Service{ReadOpS: 0.0005, WriteOpS: 0.001},
		}},
	}
}

func TestFittedDeviceFIFO(t *testing.T) {
	eng := sim.NewEngine()
	d, err := NewDevice(eng, simpleModel(), "t0")
	if err != nil {
		t.Fatal(err)
	}
	var doneAt []time.Duration
	req := device.Request{Op: device.OpWrite, Size: 4096}
	for i := 0; i < 3; i++ {
		d.Submit(req, func() { doneAt = append(doneAt, eng.Now()) })
	}
	eng.Run()
	if len(doneAt) != 3 {
		t.Fatalf("%d completions, want 3", len(doneAt))
	}
	// Writes serialize at 1 ms each on the single server.
	for i, at := range doneAt {
		want := time.Duration(i+1) * time.Millisecond
		if at != want {
			t.Errorf("completion %d at %v, want %v", i, at, want)
		}
	}
}

func TestFittedDeviceEnergyExact(t *testing.T) {
	eng := sim.NewEngine()
	d, err := NewDevice(eng, simpleModel(), "t0")
	if err != nil {
		t.Fatal(err)
	}
	d.Submit(device.Request{Op: device.OpWrite, Size: 4096}, func() {})
	// During the write: static 1 W plus 2 J spread over 1 ms = 2001 W.
	if got := d.InstantPower(); math.Abs(got-2001) > 1e-9 {
		t.Errorf("busy draw %v W, want 2001", got)
	}
	eng.Run()
	eng.RunUntil(1 * time.Second)
	// After 1 s: 1 J static + 2 J for the write.
	if got := d.EnergyJ(); math.Abs(got-3) > 1e-9 {
		t.Errorf("energy %v J, want 3", got)
	}
	if got := d.InstantPower(); got != 1 {
		t.Errorf("idle draw %v W, want 1", got)
	}
}

func TestFittedDeviceReadWriteCoefficients(t *testing.T) {
	eng := sim.NewEngine()
	d, err := NewDevice(eng, simpleModel(), "t0")
	if err != nil {
		t.Fatal(err)
	}
	var readDone time.Duration
	d.Submit(device.Request{Op: device.OpRead, Size: 4096}, func() { readDone = eng.Now() })
	eng.Run()
	if readDone != 500*time.Microsecond {
		t.Errorf("read completed at %v, want 500µs", readDone)
	}
	if got := d.EnergyJ(); math.Abs(got-(1*0.0005+1)) > 1e-9 {
		t.Errorf("energy %v J, want static 0.0005 + read 1", got)
	}
}

func TestFittedDevicePowerStates(t *testing.T) {
	eng := sim.NewEngine()
	// Single-state model: no host-selectable states advertised.
	d, err := NewDevice(eng, simpleModel(), "t0")
	if err != nil {
		t.Fatal(err)
	}
	if d.PowerStates() != nil {
		t.Error("single-state model advertises power states")
	}
	if err := d.SetPowerState(1); err != device.ErrBadPowerState {
		t.Errorf("out-of-range state: %v", err)
	}
	if err := d.SetPowerState(0); err != nil {
		t.Errorf("state 0 rejected: %v", err)
	}

	// Multi-state model: descriptors mirror the fitted caps, and the
	// static floor switches with the state.
	m := simpleModel()
	m.States = append(m.States, State{
		MaxPowerW: 5,
		Energy:    Coeffs{ReadOpJ: 1, WriteOpJ: 2, StaticW: 0.25},
		Service:   Service{ReadOpS: 0.001, WriteOpS: 0.002},
	})
	d2, err := NewDevice(eng, m, "t1")
	if err != nil {
		t.Fatal(err)
	}
	ps := d2.PowerStates()
	if len(ps) != 2 || ps[0].MaxPowerW != 10 || ps[1].MaxPowerW != 5 {
		t.Fatalf("descriptors %+v, want caps 10 and 5", ps)
	}
	if err := d2.SetPowerState(1); err != nil {
		t.Fatal(err)
	}
	if d2.PowerStateIndex() != 1 {
		t.Errorf("state index %d, want 1", d2.PowerStateIndex())
	}
	if got := d2.InstantPower(); got != 0.25 {
		t.Errorf("idle draw in ps1 = %v W, want 0.25", got)
	}
}

func TestFittedDeviceDeclinesStandby(t *testing.T) {
	eng := sim.NewEngine()
	d, err := NewDevice(eng, simpleModel(), "t0")
	if err != nil {
		t.Fatal(err)
	}
	if err := d.EnterStandby(); err != device.ErrNotSupported {
		t.Errorf("EnterStandby: %v", err)
	}
	if err := d.Wake(); err != device.ErrNotSupported {
		t.Errorf("Wake: %v", err)
	}
	if d.Standby() {
		t.Error("fitted device claims standby")
	}
	if !d.Settled() {
		t.Error("fitted device not settled")
	}
}

func TestFittedDeviceRejects(t *testing.T) {
	eng := sim.NewEngine()
	if _, err := NewDevice(eng, &Model{}, "t0"); err == nil {
		t.Fatal("invalid model accepted")
	}
	d, err := NewDevice(eng, simpleModel(), "t0")
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("invalid request did not panic")
		}
	}()
	d.Submit(device.Request{Op: device.OpWrite, Size: 100}, func() {}) // unaligned
}

// TestFittedDeviceMinimumService: pathological tiny service coefficients
// round up to one engine tick instead of completing in zero time.
func TestFittedDeviceMinimumService(t *testing.T) {
	eng := sim.NewEngine()
	m := simpleModel()
	m.States[0].Service = Service{ReadOpS: 1e-15, WriteOpS: 1e-15}
	d, err := NewDevice(eng, m, "t0")
	if err != nil {
		t.Fatal(err)
	}
	var at time.Duration
	d.Submit(device.Request{Op: device.OpWrite, Size: 4096}, func() { at = eng.Now() })
	eng.Run()
	if at != time.Nanosecond {
		t.Errorf("completion at %v, want the 1ns floor", at)
	}
}
