package calib

import (
	"fmt"
	"time"

	"wattio/internal/device"
	"wattio/internal/sim"
)

// FittedDevice implements device.Device from a fitted Model alone — no
// mechanistic internals, just the coefficients: a single-server FIFO
// whose per-IO service time and energy come from the current power
// state's fitted Service and Coeffs. It plugs into everything the
// mechanistic devices do (fleets, governors, budget controllers, fault
// wrappers, serving lanes), which is the point: a device class that
// has measurements but no simulator still serves.
//
// Energy accounting integrates a piecewise-constant power signal
// exactly: StaticW always, plus the in-flight IO's energy spread
// uniformly over its service time. InstantPower is that same signal,
// so a governor's ΔE/Δt measurements and the rig's sampling agree by
// construction.
type FittedDevice struct {
	eng    *sim.Engine
	m      *Model
	name   string
	states []device.PowerState // advertised descriptors; nil when single-state

	ps int

	// Piecewise-constant energy integral: accJ through lastT, advancing
	// at StaticW + dynRateW.
	accJ     float64
	lastT    time.Duration
	dynRateW float64

	busy  bool
	queue []fittedReq
	head  int
}

type fittedReq struct {
	r    device.Request
	done func()
}

// NewDevice binds a validated fitted model to an engine. Models with a
// single power state advertise no host-selectable states (PowerStates
// returns nil), matching the mechanistic SATA/HDD classes.
func NewDevice(eng *sim.Engine, m *Model, name string) (*FittedDevice, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	d := &FittedDevice{eng: eng, m: m, name: name}
	if len(m.States) > 1 {
		d.states = make([]device.PowerState, len(m.States))
		for i, st := range m.States {
			d.states[i] = device.PowerState{MaxPowerW: st.MaxPowerW}
		}
	}
	return d, nil
}

// Name returns the instance label.
func (d *FittedDevice) Name() string { return d.name }

// Model returns the source class's marketing string, marked fitted.
func (d *FittedDevice) Model() string { return d.m.DeviceModel + " (fitted)" }

// Protocol returns the source class's host interface.
func (d *FittedDevice) Protocol() device.Protocol { return d.m.Protocol }

// CapacityBytes returns the addressable capacity.
func (d *FittedDevice) CapacityBytes() int64 { return d.m.CapacityBytes }

// accrue advances the energy integral to the engine's current time.
func (d *FittedDevice) accrue() {
	now := d.eng.Now()
	if dt := (now - d.lastT).Seconds(); dt > 0 {
		d.accJ += (d.m.States[d.ps].Energy.StaticW + d.dynRateW) * dt
	}
	d.lastT = now
}

// Submit enqueues an IO on the fitted FIFO. It panics on an invalid
// request, per the Device contract.
func (d *FittedDevice) Submit(r device.Request, done func()) {
	if err := r.Validate(d.m.CapacityBytes); err != nil {
		panic(fmt.Sprintf("calib: %s: %v", d.name, err))
	}
	d.queue = append(d.queue, fittedReq{r, done})
	if !d.busy {
		d.start()
	}
}

// start services the queue head: the IO holds the server for its fitted
// service time while the dynamic power rate carries its fitted energy.
// Rates are latched at issue, so a power-state change mid-IO applies
// from the next IO on — the same commit point the mechanistic models
// use.
func (d *FittedDevice) start() {
	q := d.queue[d.head]
	d.head++
	if d.head > 64 && d.head*2 >= len(d.queue) {
		d.queue = append(d.queue[:0], d.queue[d.head:]...)
		d.head = 0
	}
	st := d.m.States[d.ps]
	opS, byteS := st.Service.WriteOpS, st.Service.WriteByteS
	opJ, byteJ := st.Energy.WriteOpJ, st.Energy.WriteByteJ
	if q.r.Op == device.OpRead {
		opS, byteS = st.Service.ReadOpS, st.Service.ReadByteS
		opJ, byteJ = st.Energy.ReadOpJ, st.Energy.ReadByteJ
	}
	size := float64(q.r.Size)
	svcS := opS + byteS*size
	svc := time.Duration(svcS * float64(time.Second))
	if svc < time.Nanosecond {
		// Validation guarantees positive service seconds, but a tiny
		// fitted coefficient on a small IO can round below the engine's
		// tick; zero-duration service would livelock a closed loop.
		svc = time.Nanosecond
	}
	d.accrue()
	d.busy = true
	d.dynRateW = (opJ + byteJ*size) / svc.Seconds()
	d.eng.After(svc, func() {
		d.accrue()
		d.busy = false
		d.dynRateW = 0
		if d.head < len(d.queue) {
			d.start()
		}
		q.done()
	})
}

// InstantPower returns the current piecewise-constant draw.
func (d *FittedDevice) InstantPower() float64 {
	return d.m.States[d.ps].Energy.StaticW + d.dynRateW
}

// EnergyJ returns cumulative energy since construction.
func (d *FittedDevice) EnergyJ() float64 {
	d.accrue()
	return d.accJ
}

// PowerStates lists the advertised power-state descriptors.
func (d *FittedDevice) PowerStates() []device.PowerState { return d.states }

// SetPowerState selects a fitted state; static draw switches now, the
// in-flight IO (if any) finishes at its latched rate.
func (d *FittedDevice) SetPowerState(index int) error {
	if index < 0 || index >= len(d.m.States) {
		return device.ErrBadPowerState
	}
	d.accrue()
	d.ps = index
	return nil
}

// PowerStateIndex returns the current state index.
func (d *FittedDevice) PowerStateIndex() int { return d.ps }

// EnterStandby is not part of the fitted surface: the calibration
// sweeps measure operational states only, so a fitted device declines
// like an NVMe SSD without APST and stays fully awake.
func (d *FittedDevice) EnterStandby() error { return device.ErrNotSupported }

// Wake declines like EnterStandby.
func (d *FittedDevice) Wake() error { return device.ErrNotSupported }

// Standby is always false; fitted devices do not sleep.
func (d *FittedDevice) Standby() bool { return false }

// Settled is always true; there are no transitions to wait out.
func (d *FittedDevice) Settled() bool { return true }
