package calib

import (
	"testing"
	"time"
)

// testOptions keeps the calibration sweep cheap under `go test` while
// staying in the regime where the gates hold.
func testOptions() Options {
	return Options{PointRuntime: 800 * time.Millisecond, Seed: 42, Folds: 5}
}

var calibClasses = []string{"SSD1", "SSD2", "SSD3", "HDD"}

func TestFitClassDeterministic(t *testing.T) {
	// Two uncached fits of the same class and options must produce
	// byte-identical model files.
	a, err := fitClass("SSD2", mustDefaults(t, testOptions()))
	if err != nil {
		t.Fatal(err)
	}
	b, err := fitClass("SSD2", mustDefaults(t, testOptions()))
	if err != nil {
		t.Fatal(err)
	}
	ea, err := a.Model.Encode()
	if err != nil {
		t.Fatal(err)
	}
	eb, err := b.Model.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if string(ea) != string(eb) {
		t.Fatal("identical fits encode differently")
	}
	if a.R2 != b.R2 || a.MAPE != b.MAPE {
		t.Fatal("identical fits score differently")
	}
}

func TestFitClassMemoized(t *testing.T) {
	a, err := FitClass("SSD3", testOptions())
	if err != nil {
		t.Fatal(err)
	}
	b, err := FitClass("SSD3", testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatal("same class and options did not hit the fit cache")
	}
	// Different options miss the cache.
	opt := testOptions()
	opt.Seed = 43
	c, err := FitClass("SSD3", opt)
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Fatal("different seed shared a cache entry")
	}
}

func TestFitClassRejectsBadInput(t *testing.T) {
	if _, err := FitClass("SSD9", testOptions()); err == nil {
		t.Error("unknown class accepted")
	}
	if _, err := FitClass("SSD2", Options{Folds: 1}); err == nil {
		t.Error("single fold accepted")
	}
	if _, err := FitClass("SSD2", Options{PointBytes: -1}); err == nil {
		t.Error("negative byte bound accepted")
	}
}

// TestFittedModelValidates: a fresh fit already satisfies the same
// contract a loaded file must meet, including positive service times in
// both directions for every state.
func TestFittedModelValidates(t *testing.T) {
	f, err := FitClass("HDD", testOptions())
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Model.Validate(); err != nil {
		t.Fatal(err)
	}
	if f.Model.Class != "HDD" || f.Model.CapacityBytes <= 0 {
		t.Fatalf("metadata not carried: %+v", f.Model)
	}
}

func mustDefaults(t *testing.T, o Options) Options {
	t.Helper()
	d, err := o.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestFitClassGates(t *testing.T) {
	for _, class := range calibClasses {
		f, err := FitClass(class, testOptions())
		if err != nil {
			t.Fatalf("%s: %v", class, err)
		}
		t.Logf("%s: R2=%.5f MAPE=%.4f states=%d", class, f.R2, f.MAPE, len(f.Model.States))
		if !f.GatesOK() {
			t.Errorf("%s: fit misses gates: R2=%.5f (>= %.2f), MAPE=%.4f (<= %.2f)",
				class, f.R2, GateR2, f.MAPE, GateMAPE)
		}
		for i, st := range f.Model.States {
			t.Logf("  ps%d: static=%.3fW rdOp=%.3guJ rdB=%.3gnJ wrOp=%.3guJ wrB=%.3gnJ svcRd=%.3gus+%.3gns/B",
				i, st.Energy.StaticW,
				st.Energy.ReadOpJ*1e6, st.Energy.ReadByteJ*1e9,
				st.Energy.WriteOpJ*1e6, st.Energy.WriteByteJ*1e9,
				st.Service.ReadOpS*1e6, st.Service.ReadByteS*1e9)
		}
	}
}
