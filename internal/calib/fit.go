package calib

import (
	"fmt"
	"math"
	"sync"
	"time"

	"wattio/internal/catalog"
	"wattio/internal/device"
	"wattio/internal/sim"
	"wattio/internal/sweep"
	"wattio/internal/workload"
)

// Calibration grid: three chunk sizes decouple per-op from per-byte
// energy, both directions fit their own coefficients, and two idle
// windows per power state anchor the static intercept (their differing
// durations, against the fixed loaded-cell window, identify StaticW
// separately from the per-IO terms). Depths stay in the saturated
// regime on purpose: a fitted device is a single-server FIFO, and the
// HDD's shortest-positioning-time scheduler makes per-op seek cost
// depth-dependent at low depth — variance a depth-blind linear model
// cannot express and would carry as pure error.
var (
	calibChunks = []int64{64 << 10, 256 << 10, 1 << 20}
	calibDepths = []int{32, 64}
	calibIdle   = []time.Duration{500 * time.Millisecond, 2 * time.Second}
)

// Gates every fitted class must clear, asserted by `-exp calib` and CI.
const (
	// GateR2 is the minimum cross-validated coefficient of determination.
	GateR2 = 0.98
	// GateMAPE is the maximum cross-validated mean absolute percentage
	// error on held-out energy predictions, as a fraction.
	GateMAPE = 0.05
)

// Options bounds one class's calibration sweep. Zero values take
// defaults sized so a full four-class calibration runs in seconds.
type Options struct {
	// PointBytes caps each grid cell's transferred bytes; it is a safety
	// bound, not the sizing knob. Default 8 GiB.
	PointBytes int64
	// PointRuntime is each loaded cell's virtual duration. Cells are
	// time-bound: a fixed window long enough that power-state regulators
	// reach their sustained (rolling-window) regime and the rig's 1 ms
	// sampling averages out transfer transients. Default 1.5 s.
	PointRuntime time.Duration
	// Warmup runs each cell's job shape unmeasured before sampling
	// starts, so cells measure steady state — in particular the HDD's
	// 128 MiB write-back cache is full, not absorbing writes at link
	// speed. Default 600 ms; negative disables warmup.
	Warmup time.Duration
	// Seed drives the sweep and the cross-validation shuffle. Default 42.
	Seed uint64
	// Folds is the cross-validation fold count. Default 5.
	Folds int
}

func (o Options) withDefaults() (Options, error) {
	if o.PointBytes == 0 {
		o.PointBytes = 8 << 30
	}
	if o.PointRuntime == 0 {
		o.PointRuntime = 1500 * time.Millisecond
	}
	if o.Warmup == 0 {
		o.Warmup = 600 * time.Millisecond
	} else if o.Warmup < 0 {
		o.Warmup = 0
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.Folds == 0 {
		o.Folds = 5
	}
	if o.PointBytes < 0 || o.PointRuntime < 0 {
		return o, fmt.Errorf("calib: negative sweep bounds")
	}
	if o.Folds < 2 {
		return o, fmt.Errorf("calib: need at least 2 cross-validation folds, got %d", o.Folds)
	}
	return o, nil
}

// Fit is one fitted class with its cross-validation scorecard.
type Fit struct {
	Model *Model
	// Records is the full calibration dataset (grid cells then idle
	// windows, in sweep order) the final coefficients were fitted on.
	Records []sweep.Record
	// R2 and MAPE are pooled over every held-out prediction of the
	// seeded k-fold cross-validation (MAPE as a fraction).
	R2   float64
	MAPE float64
}

// GatesOK reports whether the fit clears both CI gates.
func (f *Fit) GatesOK() bool { return f.R2 >= GateR2 && f.MAPE <= GateMAPE }

// fitCache memoizes FitClass: a campaign or a fleet spec naming the
// same class at the same options reuses one sweep+fit. The cached Fit
// is shared — callers must treat it as immutable.
var fitCache sync.Map // string → *Fit

// FitClass calibrates one catalog class: it sweeps the mechanistic
// simulator through the calibration grid, fits per-state non-negative
// energy and service models, and cross-validates the energy fit.
// Results are memoized per (class, options).
func FitClass(class string, opt Options) (*Fit, error) {
	opt, err := opt.withDefaults()
	if err != nil {
		return nil, err
	}
	key := fmt.Sprintf("%s/%d/%d/%d/%d/%d", class, opt.PointBytes, opt.PointRuntime, opt.Warmup, opt.Seed, opt.Folds)
	if f, ok := fitCache.Load(key); ok {
		return f.(*Fit), nil
	}
	f, err := fitClass(class, opt)
	if err != nil {
		return nil, err
	}
	fitCache.Store(key, f)
	return f, nil
}

// classInfo probes the catalog for a class's metadata and power states.
func classInfo(class string) (dev device.Device, states int, err error) {
	eng := sim.NewEngine()
	d, ok := catalog.ByName(class, eng, sim.NewRNG(1))
	if !ok {
		return nil, 0, fmt.Errorf("calib: unknown device class %q", class)
	}
	n := len(d.PowerStates())
	if n == 0 {
		n = 1
	}
	return d, n, nil
}

// Dataset runs the calibration sweep for one class and returns its
// measurement records: every grid cell across every power state, then
// the idle windows, all in deterministic order.
func Dataset(class string, opt Options) ([]sweep.Record, error) {
	opt, err := opt.withDefaults()
	if err != nil {
		return nil, err
	}
	_, nStates, err := classInfo(class)
	if err != nil {
		return nil, err
	}
	pss := make([]int, nStates)
	for i := range pss {
		pss[i] = i
	}
	pts, err := sweep.Run(sweep.Spec{
		Device:      class,
		PowerStates: pss,
		Ops:         []device.Op{device.OpRead, device.OpWrite},
		Patterns:    []workload.Pattern{workload.Rand},
		Chunks:      calibChunks,
		Depths:      calibDepths,
		Runtime:     opt.PointRuntime,
		TotalBytes:  opt.PointBytes,
		Warmup:      opt.Warmup,
		Seed:        opt.Seed,
	})
	if err != nil {
		return nil, err
	}
	recs := sweep.Records(pts)
	for _, ps := range pss {
		for _, dur := range calibIdle {
			p, err := sweep.Idle(class, ps, dur, opt.Seed)
			if err != nil {
				return nil, err
			}
			recs = append(recs, p.Record())
		}
	}
	return recs, nil
}

// featureRow maps a record onto the energy model's five features:
// read ops, read bytes, write ops, write bytes, seconds. The fitted
// coefficient vector is, in the same order, J/read-op, J/read-byte,
// J/write-op, J/write-byte, and the static watts.
func featureRow(r sweep.Record) []float64 {
	row := make([]float64, 5)
	if r.Write {
		row[2], row[3] = float64(r.IOs), float64(r.Bytes)
	} else {
		row[0], row[1] = float64(r.IOs), float64(r.Bytes)
	}
	row[4] = r.Seconds
	return row
}

// coeffsFrom maps a solved feature vector back onto Coeffs.
func coeffsFrom(x []float64) Coeffs {
	return Coeffs{ReadOpJ: x[0], ReadByteJ: x[1], WriteOpJ: x[2], WriteByteJ: x[3], StaticW: x[4]}
}

// PredictEnergyJ evaluates the fitted energy model on one record's
// observed operation counts and window.
func (c Coeffs) PredictEnergyJ(r sweep.Record) float64 {
	ops, bytes := float64(r.IOs), float64(r.Bytes)
	e := c.StaticW * r.Seconds
	if r.Write {
		e += c.WriteOpJ*ops + c.WriteByteJ*bytes
	} else {
		e += c.ReadOpJ*ops + c.ReadByteJ*bytes
	}
	return e
}

// fitEnergy solves the per-state NNLS energy fit over recs. Rows are
// weighted by 1/energy, so the solver minimizes relative residuals —
// the quantity the MAPE gate measures — instead of letting the
// largest-energy records (long idle windows, slow seek-bound cells)
// dominate the squared error.
func fitEnergy(recs []sweep.Record) (Coeffs, error) {
	a := make([][]float64, len(recs))
	b := make([]float64, len(recs))
	for i, r := range recs {
		if r.EnergyJ <= 0 {
			return Coeffs{}, fmt.Errorf("calib: record %d has non-positive energy %v", i, r.EnergyJ)
		}
		row := featureRow(r)
		for j := range row {
			row[j] /= r.EnergyJ
		}
		a[i] = row
		b[i] = 1
	}
	x, err := NNLS(a, b)
	if err != nil {
		return Coeffs{}, err
	}
	return coeffsFrom(x), nil
}

// fitService fits the per-state service model: seconds per op as an
// affine function of the IO size, from the saturated (deepest-queue)
// grid cells of each direction. A fitted device is a single-server
// FIFO, so its saturated throughput reproduces these cells directly.
func fitService(recs []sweep.Record) (Service, error) {
	maxDepth := 0
	for _, r := range recs {
		if r.Depth > maxDepth {
			maxDepth = r.Depth
		}
	}
	var svc Service
	for _, write := range []bool{false, true} {
		var a [][]float64
		var b []float64
		for _, r := range recs {
			if r.Write != write || r.Depth != maxDepth || r.IOs == 0 {
				continue
			}
			a = append(a, []float64{1, float64(r.ChunkBytes)})
			b = append(b, r.Seconds/float64(r.IOs))
		}
		if len(a) < 2 {
			return Service{}, fmt.Errorf("calib: %d saturated cells for service fit, need >= 2", len(a))
		}
		x, err := NNLS(a, b)
		if err != nil {
			return Service{}, err
		}
		if write {
			svc.WriteOpS, svc.WriteByteS = x[0], x[1]
		} else {
			svc.ReadOpS, svc.ReadByteS = x[0], x[1]
		}
	}
	return svc, nil
}

// crossValidate runs seeded k-fold cross-validation of the energy fit
// over the class dataset and returns the pooled R² and MAPE on held-out
// predictions. Folds are stratified: records are grouped by (power
// state, idle-vs-loaded), each group is shuffled with the seeded
// stream and dealt round-robin, so every training set keeps loaded and
// idle coverage of every state.
func crossValidate(recs []sweep.Record, opt Options) (r2, mape float64, err error) {
	fold := make([]int, len(recs))
	rng := sim.NewRNG(opt.Seed).Stream("calib/cv")
	groups := map[[2]int][]int{}
	for i, r := range recs {
		k := [2]int{r.PowerState, 0}
		if r.IOs == 0 {
			k[1] = 1
		}
		groups[k] = append(groups[k], i)
	}
	// Deterministic group walk: states ascending, loaded before idle.
	maxPS := 0
	for _, r := range recs {
		if r.PowerState > maxPS {
			maxPS = r.PowerState
		}
	}
	next := 0
	for ps := 0; ps <= maxPS; ps++ {
		for _, idle := range []int{0, 1} {
			idxs := groups[[2]int{ps, idle}]
			for i := len(idxs) - 1; i > 0; i-- {
				j := rng.IntN(i + 1)
				idxs[i], idxs[j] = idxs[j], idxs[i]
			}
			for _, i := range idxs {
				fold[i] = next % opt.Folds
				next++
			}
		}
	}

	var ssRes, ssTot, sumAPE float64
	var n int
	var mean float64
	for _, r := range recs {
		mean += r.EnergyJ
	}
	mean /= float64(len(recs))
	for f := 0; f < opt.Folds; f++ {
		// Per-state refit on the training folds.
		coeffs := map[int]Coeffs{}
		for ps := 0; ps <= maxPS; ps++ {
			var train []sweep.Record
			for i, r := range recs {
				if fold[i] != f && r.PowerState == ps {
					train = append(train, r)
				}
			}
			if len(train) == 0 {
				continue
			}
			c, err := fitEnergy(train)
			if err != nil {
				return 0, 0, err
			}
			coeffs[ps] = c
		}
		for i, r := range recs {
			if fold[i] != f {
				continue
			}
			c, ok := coeffs[r.PowerState]
			if !ok {
				return 0, 0, fmt.Errorf("calib: fold %d left power state %d with no training data", f, r.PowerState)
			}
			pred := c.PredictEnergyJ(r)
			ssRes += (pred - r.EnergyJ) * (pred - r.EnergyJ)
			ssTot += (r.EnergyJ - mean) * (r.EnergyJ - mean)
			sumAPE += math.Abs(pred-r.EnergyJ) / math.Abs(r.EnergyJ)
			n++
		}
	}
	if n == 0 || ssTot == 0 {
		return 0, 0, fmt.Errorf("calib: cross-validation had no held-out predictions")
	}
	return 1 - ssRes/ssTot, sumAPE / float64(n), nil
}

// fitClass is the uncached fit: dataset, per-state fits, CV, model
// assembly with the catalog metadata.
func fitClass(class string, opt Options) (*Fit, error) {
	dev, nStates, err := classInfo(class)
	if err != nil {
		return nil, err
	}
	recs, err := Dataset(class, opt)
	if err != nil {
		return nil, err
	}
	m := &Model{
		Class:         class,
		DeviceModel:   dev.Model(),
		Protocol:      dev.Protocol(),
		CapacityBytes: dev.CapacityBytes(),
	}
	descr := dev.PowerStates()
	for ps := 0; ps < nStates; ps++ {
		var sub []sweep.Record
		for _, r := range recs {
			if r.PowerState == ps {
				sub = append(sub, r)
			}
		}
		energy, err := fitEnergy(sub)
		if err != nil {
			return nil, fmt.Errorf("calib: %s ps%d energy fit: %w", class, ps, err)
		}
		svc, err := fitService(sub)
		if err != nil {
			return nil, fmt.Errorf("calib: %s ps%d service fit: %w", class, ps, err)
		}
		st := State{Energy: energy, Service: svc}
		if ps < len(descr) {
			st.MaxPowerW = descr[ps].MaxPowerW
		}
		m.States = append(m.States, st)
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("calib: %s fit produced an invalid model: %w", class, err)
	}
	r2, mape, err := crossValidate(recs, opt)
	if err != nil {
		return nil, fmt.Errorf("calib: %s: %w", class, err)
	}
	return &Fit{Model: m, Records: recs, R2: r2, MAPE: mape}, nil
}
