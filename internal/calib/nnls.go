// Package calib is the learned-device-model pipeline: it sweeps the
// mechanistic simulators through deterministic workload grids, fits a
// compact non-negative linear power model per device class with an
// active-set NNLS solver, cross-validates the fit (R², MAPE), and
// serves the result back through FittedDevice — a device.Device
// implementation driven only by the fitted coefficients, so planners
// and the serving engine can consume hardware that has measurements
// but no simulator.
package calib

import (
	"fmt"
	"math"
)

// nnlsMaxIter bounds the active-set loop per unknown; Lawson–Hanson
// terminates in finitely many steps, so hitting the bound means the
// inputs were degenerate enough to cycle numerically.
const nnlsMaxIter = 30

// checkSystem validates the shared preconditions of NNLS and OLS:
// a non-empty rectangular system with finite entries.
func checkSystem(a [][]float64, b []float64) (rows, cols int, err error) {
	rows = len(a)
	if rows == 0 || rows != len(b) {
		return 0, 0, fmt.Errorf("calib: system has %d rows for %d targets", rows, len(b))
	}
	cols = len(a[0])
	if cols == 0 {
		return 0, 0, fmt.Errorf("calib: system has no columns")
	}
	for i, row := range a {
		if len(row) != cols {
			return 0, 0, fmt.Errorf("calib: row %d has %d columns, want %d", i, len(row), cols)
		}
		for j, v := range row {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				return 0, 0, fmt.Errorf("calib: non-finite entry at [%d][%d]", i, j)
			}
		}
	}
	for i, v := range b {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return 0, 0, fmt.Errorf("calib: non-finite target at [%d]", i)
		}
	}
	return rows, cols, nil
}

// NNLS solves min ‖Ax − b‖₂ subject to x ≥ 0 with the Lawson–Hanson
// active-set method. a is row-major (a[i] is one observation). The
// solver is deterministic: ties in the entering-variable choice break
// toward the lowest column index, so the same system always yields the
// same solution bit for bit.
//
// Columns are normalized to unit Euclidean length internally (the
// feature scales here span ~15 orders of magnitude — joules per byte
// against joules per second), which preserves both the constraint set
// and the optimum; the returned coefficients are in the caller's units.
func NNLS(a [][]float64, b []float64) ([]float64, error) {
	rows, cols, err := checkSystem(a, b)
	if err != nil {
		return nil, err
	}

	// Column-normalized working copy.
	scale := make([]float64, cols)
	for j := 0; j < cols; j++ {
		var ss float64
		for i := 0; i < rows; i++ {
			ss += a[i][j] * a[i][j]
		}
		scale[j] = math.Sqrt(ss)
		if scale[j] == 0 {
			scale[j] = 1 // all-zero column: never enters (its gradient is 0)
		}
	}
	w := make([][]float64, rows)
	for i := range w {
		w[i] = make([]float64, cols)
		for j := 0; j < cols; j++ {
			w[i][j] = a[i][j] / scale[j]
		}
	}

	var bNorm float64
	for _, v := range b {
		bNorm += v * v
	}
	tol := 1e-10 * (1 + math.Sqrt(bNorm))

	x := make([]float64, cols)    // current iterate (scaled units)
	passive := make([]bool, cols) // the active-set partition
	banned := make([]bool, cols)  // columns exactly collinear with the passive set
	resid := append([]float64(nil), b...)
	grad := make([]float64, cols)

	for iter := 0; iter < nnlsMaxIter*cols; iter++ {
		// Gradient of the objective at x: Aᵀ(b − Ax).
		for j := 0; j < cols; j++ {
			grad[j] = 0
			for i := 0; i < rows; i++ {
				grad[j] += w[i][j] * resid[i]
			}
		}
		// Most-improving constrained column; lowest index wins ties.
		enter, best := -1, tol
		for j := 0; j < cols; j++ {
			if !passive[j] && !banned[j] && grad[j] > best {
				enter, best = j, grad[j]
			}
		}
		if enter < 0 {
			break // KKT: no inactive column can reduce the residual
		}
		passive[enter] = true

		// Inner loop: unconstrained LS on the passive set, stepping back
		// toward feasibility while any passive coefficient would go
		// negative.
		for {
			z, ok := lsSolvePassive(w, b, passive)
			if !ok {
				// The entering column made the passive normal matrix
				// singular (exact collinearity). Drop and ban it so the
				// outer loop cannot pick it again and cycle.
				passive[enter] = false
				banned[enter] = true
				break
			}
			neg := false
			alpha := 1.0
			for j := 0; j < cols; j++ {
				if passive[j] && z[j] <= 0 {
					neg = true
					if step := x[j] / (x[j] - z[j]); step < alpha {
						alpha = step
					}
				}
			}
			if !neg {
				copy(x, z)
				break
			}
			for j := 0; j < cols; j++ {
				if passive[j] {
					x[j] += alpha * (z[j] - x[j])
					if x[j] <= tol {
						x[j] = 0
						passive[j] = false
					}
				}
			}
		}

		// Refresh the residual for the next gradient.
		for i := 0; i < rows; i++ {
			r := b[i]
			for j := 0; j < cols; j++ {
				if x[j] != 0 {
					r -= w[i][j] * x[j]
				}
			}
			resid[i] = r
		}
	}

	out := make([]float64, cols)
	for j := 0; j < cols; j++ {
		if x[j] < 0 {
			x[j] = 0
		}
		out[j] = x[j] / scale[j]
	}
	return out, nil
}

// OLS solves the unconstrained least-squares problem min ‖Ax − b‖₂ via
// the normal equations (the systems here are tiny and column-normalized,
// so this is accurate enough). It errors on a singular system.
func OLS(a [][]float64, b []float64) ([]float64, error) {
	rows, cols, err := checkSystem(a, b)
	if err != nil {
		return nil, err
	}
	scale := make([]float64, cols)
	for j := 0; j < cols; j++ {
		var ss float64
		for i := 0; i < rows; i++ {
			ss += a[i][j] * a[i][j]
		}
		scale[j] = math.Sqrt(ss)
		if scale[j] == 0 {
			return nil, fmt.Errorf("calib: column %d is identically zero", j)
		}
	}
	w := make([][]float64, rows)
	for i := range w {
		w[i] = make([]float64, cols)
		for j := 0; j < cols; j++ {
			w[i][j] = a[i][j] / scale[j]
		}
	}
	all := make([]bool, cols)
	for j := range all {
		all[j] = true
	}
	x, ok := lsSolvePassive(w, b, all)
	if !ok {
		return nil, fmt.Errorf("calib: singular least-squares system")
	}
	for j := 0; j < cols; j++ {
		x[j] /= scale[j]
	}
	return x, nil
}

// lsSolvePassive solves the unconstrained least-squares problem over
// the passive columns of a via the normal equations with partially
// pivoted Gaussian elimination. The returned vector is full-width with
// zeros in the active positions; ok is false on a singular system.
func lsSolvePassive(a [][]float64, b []float64, passive []bool) ([]float64, bool) {
	var idx []int
	for j, p := range passive {
		if p {
			idx = append(idx, j)
		}
	}
	n := len(idx)
	out := make([]float64, len(passive))
	if n == 0 {
		return out, true
	}
	// Normal equations G z = g with G = AᵀA, g = Aᵀb over passive columns.
	g := make([][]float64, n)
	rhs := make([]float64, n)
	for p := 0; p < n; p++ {
		g[p] = make([]float64, n)
		for q := 0; q < n; q++ {
			var s float64
			for i := range a {
				s += a[i][idx[p]] * a[i][idx[q]]
			}
			g[p][q] = s
		}
		var s float64
		for i := range a {
			s += a[i][idx[p]] * b[i]
		}
		rhs[p] = s
	}
	// Gaussian elimination with partial pivoting.
	const singTol = 1e-12
	for c := 0; c < n; c++ {
		piv := c
		for r := c + 1; r < n; r++ {
			if math.Abs(g[r][c]) > math.Abs(g[piv][c]) {
				piv = r
			}
		}
		if math.Abs(g[piv][c]) < singTol {
			return nil, false
		}
		g[c], g[piv] = g[piv], g[c]
		rhs[c], rhs[piv] = rhs[piv], rhs[c]
		for r := c + 1; r < n; r++ {
			f := g[r][c] / g[c][c]
			if f == 0 {
				continue
			}
			for k := c; k < n; k++ {
				g[r][k] -= f * g[c][k]
			}
			rhs[r] -= f * rhs[c]
		}
	}
	for c := n - 1; c >= 0; c-- {
		s := rhs[c]
		for k := c + 1; k < n; k++ {
			s -= g[c][k] * out[idx[k]]
		}
		out[idx[c]] = s / g[c][c]
	}
	return out, true
}
