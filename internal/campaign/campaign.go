// Package campaign executes a version-2 scenario campaign: it expands
// the spec's grid stanza into its point family (internal/scenario),
// runs every point's fleet simulation across a worker pool
// (internal/grid), and merges the per-point reports into one campaign
// report in grid order.
//
// Determinism contract: the merged report is a pure function of the
// spec. Points land in fixed index slots and each point's serving run
// is bit-identical regardless of host scheduling (the serve package's
// guarantee), so the campaign report — and its canonical JSON encoding
// — is byte-identical whether the family runs on one worker or many.
// Nothing scheduling-dependent (worker counts, timings, host state) is
// allowed into the report.
package campaign

import (
	"encoding/json"
	"fmt"
	"runtime"

	"wattio/internal/experiments"
	"wattio/internal/grid"
	"wattio/internal/scenario"
	"wattio/internal/serve"
)

// Axis is one grid axis's shape in the merged report.
type Axis struct {
	Key string `json:"key"`
	Len int    `json:"len"`
}

// Point is one grid point's outcome: its identity within the family
// (label, coordinates, derived seeds), the axis values it resolved to,
// and the full serving report.
type Point struct {
	Label  string `json:"label"`
	Name   string `json:"name"`
	Coords []int  `json:"coords,omitempty"`

	Seed      uint64  `json:"seed"`
	FaultSeed uint64  `json:"fault_seed"`
	Budget    string  `json:"budget,omitempty"`
	Size      int     `json:"size"`
	RateIOPS  float64 `json:"rate_iops"`
	Replicas  int     `json:"replicas"`

	Report *serve.Report `json:"report"`
}

// Report is the merged outcome of a whole campaign.
type Report struct {
	// Campaign is the spec name; Version the spec schema version it was
	// expanded under.
	Campaign string `json:"campaign"`
	Version  int    `json:"version"`
	Seed     uint64 `json:"seed"`
	// Axes is the grid shape in expansion order; empty for a gridless
	// spec (which runs as a single-point campaign).
	Axes []Axis `json:"axes,omitempty"`
	// Points holds one entry per grid point, in expansion
	// (lexicographic-coordinate) order.
	Points []Point `json:"points"`
}

// JSON is the report's canonical encoding: fixed field order, two-space
// indent, trailing newline. Byte-identical across runs of the same
// spec at any worker count.
func (r *Report) JSON() ([]byte, error) {
	b, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(b, '\n'), nil
}

// Run expands the spec and executes every grid point across at most
// parallel workers (parallel < 1 means one per CPU). Any point failure
// aborts the campaign with the point named; a point whose serving run
// violates the power-cap invariant (Report.CapOK false) is a failure —
// a campaign exists to compare points, and a point that broke its cap
// is not comparable. Budget-tracking misses (TrackOK false) are data,
// not errors: curtailment campaigns sweep budgets specifically to find
// where tracking breaks.
func Run(sp *scenario.Spec, parallel int) (*Report, error) {
	pts, err := sp.Expand()
	if err != nil {
		return nil, err
	}
	if parallel < 1 {
		parallel = runtime.GOMAXPROCS(0)
	}
	reports := make([]*serve.Report, len(pts))
	rates := make([]float64, len(pts))
	errs := make([]error, len(pts))
	grid.Pool(len(pts), parallel, func(i int) {
		reports[i], rates[i], errs[i] = runPoint(pts[i].Spec)
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("campaign: point %s: %w", pts[i].Label, err)
		}
	}

	out := &Report{Campaign: sp.Name, Version: sp.Version, Seed: sp.Seed}
	if sp.Grid != nil {
		for _, a := range sp.Grid.Axes() {
			out.Axes = append(out.Axes, Axis{Key: a.Key, Len: a.Len})
		}
	}
	out.Points = make([]Point, len(pts))
	for i, pt := range pts {
		p := Point{
			Label:     pt.Label,
			Name:      pt.Spec.Name,
			Coords:    pt.Coords,
			Seed:      pt.Spec.Seed,
			FaultSeed: pt.Spec.FaultSeed,
			Report:    reports[i],
		}
		if fl := pt.Spec.Fleet; fl != nil {
			p.Budget = fl.Budget
		}
		p.Size = reports[i].Devices
		p.Replicas = reports[i].Devices / reports[i].Groups
		p.RateIOPS = rates[i]
		out.Points[i] = p
	}
	return out, nil
}

// runPoint executes one fully-resolved point spec end to end,
// returning the merged serving report and the arrival rate the spec
// resolved to (defaults applied).
func runPoint(sp *scenario.Spec) (*serve.Report, float64, error) {
	sc := experiments.ScaleFor(sp)
	ss, err := sp.ServeSpec(sc.Runtime)
	if err != nil {
		return nil, 0, err
	}
	rep, err := serve.Run(ss)
	if err != nil {
		return nil, 0, err
	}
	if !rep.CapOK {
		return nil, 0, fmt.Errorf("power-cap invariant violated (worst excess %.2f W)", rep.CapWorstW)
	}
	return rep, ss.RateIOPS, nil
}
