package campaign

import (
	"runtime"
	"strings"
	"testing"
	"time"

	"wattio/internal/detcheck"
	"wattio/internal/scenario"
)

// testSpec returns the canonical campaign built-in shrunk to a horizon
// a unit test can afford (the structure — three axes, scripted fault,
// mirrored fleet — is kept intact).
func testSpec(t testing.TB) *scenario.Spec {
	t.Helper()
	sp := scenario.BuiltIn("campaign")
	if sp == nil {
		t.Fatal("no campaign built-in")
	}
	sp.Runtime = scenario.Duration(150 * time.Millisecond)
	if err := sp.Validate(); err != nil {
		t.Fatal(err)
	}
	return sp
}

// TestCampaignDeterminism pins the headline contract: the canonical
// report encoding is byte-identical across repeat runs, pinned
// GOMAXPROCS, a serial (-parallel 1) run, and a fully parallel run.
func TestCampaignDeterminism(t *testing.T) {
	sp := testSpec(t)
	produce := func(workers int) func() ([]byte, error) {
		return func() ([]byte, error) {
			rep, err := Run(sp, workers)
			if err != nil {
				return nil, err
			}
			return rep.JSON()
		}
	}
	detcheck.Assert(t, produce(1), detcheck.Config[[]byte]{
		Procs: []int{2},
		Variants: []detcheck.Variant[[]byte]{
			{Label: "parallel=2", Produce: produce(2)},
			{Label: "parallel=GOMAXPROCS", Produce: produce(runtime.GOMAXPROCS(0))},
			{Label: "parallel=default", Produce: produce(0)},
		},
	})
}

// TestCampaignReportShape checks the merged report carries the family
// in grid order with axis values resolved per point.
func TestCampaignReportShape(t *testing.T) {
	sp := testSpec(t)
	rep, err := Run(sp, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Campaign != "campaign" || rep.Version != scenario.Version || rep.Seed != sp.Seed {
		t.Fatalf("header: %+v", rep)
	}
	if len(rep.Axes) != 3 || rep.Axes[0].Key != "b" || rep.Axes[1].Key != "n" || rep.Axes[2].Key != "fs" {
		t.Fatalf("axes: %+v", rep.Axes)
	}
	if len(rep.Points) != 8 {
		t.Fatalf("%d points, want 8", len(rep.Points))
	}
	for i, p := range rep.Points {
		want := sp.Grid.FleetSizes[p.Coords[1]]
		if p.Size != want {
			t.Fatalf("point %s: size %d, want %d", p.Label, p.Size, want)
		}
		if p.FaultSeed != sp.Grid.FaultSeeds[p.Coords[2]] {
			t.Fatalf("point %s: fault seed %d", p.Label, p.FaultSeed)
		}
		if p.Report == nil || p.Report.Completed == 0 {
			t.Fatalf("point %s: empty report", p.Label)
		}
		if p.Name != "campaign/"+p.Label {
			t.Fatalf("point %d named %q", i, p.Name)
		}
		if p.RateIOPS != sp.Fleet.RateIOPS {
			t.Fatalf("point %s: rate %v", p.Label, p.RateIOPS)
		}
	}
	// Fleet-size axis must actually change outcomes: a 16-device point
	// admits more work than its 8-device sibling.
	var small, large int64
	for _, p := range rep.Points {
		if p.Label == "b0-n0-fs0" {
			small = p.Report.Completed
		}
		if p.Label == "b0-n1-fs0" {
			large = p.Report.Completed
		}
	}
	if large <= small {
		t.Fatalf("16-device point completed %d <= 8-device point %d", large, small)
	}
}

// TestCampaignGridless: a spec without a grid runs as a single-point
// campaign, so one CLI path serves both shapes.
func TestCampaignGridless(t *testing.T) {
	sp := scenario.BuiltIn("fleet")
	sp.Runtime = scenario.Duration(150 * time.Millisecond)
	rep, err := Run(sp, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Axes) != 0 || len(rep.Points) != 1 {
		t.Fatalf("gridless campaign: %d axes, %d points", len(rep.Axes), len(rep.Points))
	}
	if rep.Points[0].Label != "fleet" || rep.Points[0].Seed != sp.Seed {
		t.Fatalf("gridless point: %+v", rep.Points[0])
	}
}

// TestCampaignInvalidSpec: expansion failures surface with the
// offending path, not a partial report.
func TestCampaignInvalidSpec(t *testing.T) {
	sp := scenario.BuiltIn("campaign")
	sp.Grid.FleetSizes = []int{8, 9}
	_, err := Run(sp, 1)
	if err == nil || !strings.Contains(err.Error(), "grid point") {
		t.Fatalf("invalid grid accepted: %v", err)
	}
}
