package core

import (
	"testing"
	"testing/quick"
	"time"
)

func latSample(ps int, w, mbps float64, avg, p99 time.Duration) Sample {
	s := s("D", ps, 256, 64, w, mbps)
	s.AvgLat = avg
	s.P99Lat = p99
	return s
}

func sloModel(t *testing.T) *Model {
	t.Helper()
	m, err := NewModel("D", []Sample{
		latSample(0, 8.0, 3500, 1*time.Millisecond, 2*time.Millisecond),
		latSample(1, 7.0, 2500, 1200*time.Microsecond, 3*time.Millisecond),
		latSample(2, 6.0, 1900, 2*time.Millisecond, 12*time.Millisecond),
		latSample(2, 5.5, 900, 800*time.Microsecond, 1500*time.Microsecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestSLOMeets(t *testing.T) {
	t.Parallel()
	x := latSample(0, 8, 3500, time.Millisecond, 2*time.Millisecond)
	cases := []struct {
		slo  SLO
		want bool
	}{
		{SLO{}, true},
		{SLO{MaxAvgLat: 2 * time.Millisecond}, true},
		{SLO{MaxAvgLat: 500 * time.Microsecond}, false},
		{SLO{MaxP99Lat: time.Millisecond}, false},
		{SLO{MinMBps: 4000}, false},
		{SLO{MaxAvgLat: 2 * time.Millisecond, MaxP99Lat: 5 * time.Millisecond, MinMBps: 1000}, true},
	}
	for i, tc := range cases {
		if got := tc.slo.Meets(x); got != tc.want {
			t.Errorf("case %d (%v): Meets = %v, want %v", i, tc.slo, got, tc.want)
		}
	}
}

func TestBestUnderPowerSLO(t *testing.T) {
	t.Parallel()
	m := sloModel(t)
	// Budget 7 W with a p99 SLO of 5 ms: the ps1 point qualifies, the
	// ps2/1900 point (12 ms tail) does not.
	best, ok := m.BestUnderPowerSLO(7.0, SLO{MaxP99Lat: 5 * time.Millisecond})
	if !ok || best.ThroughputMBps != 2500 {
		t.Fatalf("best = %+v ok=%v, want the 2500 MBps point", best, ok)
	}
	// A tight tail SLO forces the low-power shaped point.
	best, ok = m.BestUnderPowerSLO(7.0, SLO{MaxP99Lat: 1600 * time.Microsecond})
	if !ok || best.ThroughputMBps != 900 {
		t.Fatalf("best = %+v ok=%v, want the 900 MBps point", best, ok)
	}
	if _, ok := m.BestUnderPowerSLO(4, SLO{}); ok {
		t.Error("impossible budget satisfied")
	}
	if _, ok := m.BestUnderPowerSLO(10, SLO{MaxP99Lat: time.Microsecond}); ok {
		t.Error("impossible SLO satisfied")
	}
}

func TestMinPowerSLO(t *testing.T) {
	t.Parallel()
	m := sloModel(t)
	best, ok := m.MinPowerSLO(SLO{MinMBps: 2000, MaxP99Lat: 5 * time.Millisecond})
	if !ok || best.PowerW != 7.0 {
		t.Fatalf("best = %+v ok=%v, want the 7 W point", best, ok)
	}
	if _, ok := m.MinPowerSLO(SLO{MinMBps: 9999}); ok {
		t.Error("impossible throughput floor satisfied")
	}
}

func TestPowerLatencyFrontier(t *testing.T) {
	t.Parallel()
	m := sloModel(t)
	fr := m.PowerLatencyFrontier()
	if len(fr) == 0 {
		t.Fatal("empty frontier")
	}
	for i := 1; i < len(fr); i++ {
		if fr[i].PowerW < fr[i-1].PowerW {
			t.Error("frontier not sorted by power")
		}
		if fr[i].P99Lat >= fr[i-1].P99Lat {
			t.Error("frontier latency not strictly decreasing")
		}
	}
	// The 6 W / 12 ms point is dominated by 5.5 W / 1.5 ms.
	for _, f := range fr {
		if f.PowerW == 6.0 {
			t.Error("dominated point on latency frontier")
		}
	}
}

func TestPowerLatencyFrontierSkipsNoLatency(t *testing.T) {
	t.Parallel()
	m, _ := NewModel("D", []Sample{
		s("D", 0, 4, 1, 5, 100), // no latency data
		latSample(0, 6, 200, time.Millisecond, 2*time.Millisecond),
	})
	fr := m.PowerLatencyFrontier()
	if len(fr) != 1 || fr[0].P99Lat == 0 {
		t.Fatalf("frontier = %+v, want only the point with latency data", fr)
	}
}

// Property: no frontier point is dominated in (power, p99).
func TestPowerLatencyFrontierProperty(t *testing.T) {
	t.Parallel()
	f := func(raw []struct{ P, L uint16 }) bool {
		if len(raw) == 0 {
			return true
		}
		samples := make([]Sample, len(raw))
		for i, r := range raw {
			samples[i] = latSample(0, float64(r.P)+1, 100, time.Millisecond, time.Duration(r.L)+1)
		}
		m, err := NewModel("D", samples)
		if err != nil {
			return false
		}
		for _, fp := range m.PowerLatencyFrontier() {
			for _, sp := range samples {
				if sp.PowerW <= fp.PowerW && sp.P99Lat < fp.P99Lat {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSLOString(t *testing.T) {
	t.Parallel()
	if got := (SLO{}).String(); got != "unconstrained" {
		t.Errorf("empty SLO = %q", got)
	}
	got := SLO{MaxAvgLat: time.Millisecond, MinMBps: 100}.String()
	if got == "" || got == "unconstrained" {
		t.Errorf("SLO string = %q", got)
	}
}
