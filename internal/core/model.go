// Package core implements the paper's primary contribution: per-device
// power-throughput models (§3.3, Fig. 10) built from measured operating
// points, and the queries a power-adaptive storage system runs against
// them — Pareto frontiers, best-configuration-under-a-power-budget,
// curtailment planning, and multi-device combination.
package core

import (
	"fmt"
	"sort"
	"time"
)

// Config identifies one operating configuration: the device's power
// state plus the IO shape applied to it.
type Config struct {
	Device     string
	PowerState int
	// Random is true for random-offset IO, false for sequential.
	Random bool
	// Write is true for write workloads, false for reads.
	Write bool
	// ChunkBytes is the IO size.
	ChunkBytes int64
	// Depth is the IO queue depth.
	Depth int
}

// String renders the configuration compactly, e.g.
// "SSD2/ps1/randwrite-256KiB-qd64".
func (c Config) String() string {
	pat, dir := "seq", "read"
	if c.Random {
		pat = "rand"
	}
	if c.Write {
		dir = "write"
	}
	return fmt.Sprintf("%s/ps%d/%s%s-%dKiB-qd%d", c.Device, c.PowerState, pat, dir, c.ChunkBytes/1024, c.Depth)
}

// Sample is one measured operating point: a configuration with the
// average power, throughput, and latency observed under it.
type Sample struct {
	Config
	PowerW         float64
	ThroughputMBps float64
	AvgLat         time.Duration
	P99Lat         time.Duration
}

// Model is the power-throughput model of one device: the set of
// operating points measured across power states and IO shapes.
type Model struct {
	device   string
	samples  []Sample
	maxPower float64
	minPower float64
	maxTput  float64
	// frontier caches paretoFrontier; nil until first query.
	frontier []Sample
}

// NewModel builds a model from measured samples. All samples must be
// for the named device, have positive power, and nonnegative throughput.
func NewModel(dev string, samples []Sample) (*Model, error) {
	if len(samples) == 0 {
		return nil, fmt.Errorf("core: model for %s needs at least one sample", dev)
	}
	m := &Model{device: dev, samples: make([]Sample, len(samples))}
	copy(m.samples, samples)
	m.minPower = samples[0].PowerW
	for _, s := range m.samples {
		if s.Device != dev {
			return nil, fmt.Errorf("core: sample %v in model for %s", s.Config, dev)
		}
		if s.PowerW <= 0 {
			return nil, fmt.Errorf("core: sample %v has non-positive power %v", s.Config, s.PowerW)
		}
		if s.ThroughputMBps < 0 {
			return nil, fmt.Errorf("core: sample %v has negative throughput", s.Config)
		}
		if s.PowerW > m.maxPower {
			m.maxPower = s.PowerW
		}
		if s.PowerW < m.minPower {
			m.minPower = s.PowerW
		}
		if s.ThroughputMBps > m.maxTput {
			m.maxTput = s.ThroughputMBps
		}
	}
	return m, nil
}

// Device returns the device label the model describes.
func (m *Model) Device() string { return m.device }

// Samples returns a copy of the model's operating points.
func (m *Model) Samples() []Sample {
	out := make([]Sample, len(m.samples))
	copy(out, m.samples)
	return out
}

// MaxPowerW returns the highest average power across operating points.
func (m *Model) MaxPowerW() float64 { return m.maxPower }

// MinPowerW returns the lowest average power across operating points.
func (m *Model) MinPowerW() float64 { return m.minPower }

// MaxThroughputMBps returns the highest throughput across points.
func (m *Model) MaxThroughputMBps() float64 { return m.maxTput }

// DynamicRangeFrac is the paper's power dynamic range metric: the span
// of achievable average power as a fraction of maximum average power
// (SSD2 reaches 59.4%).
func (m *Model) DynamicRangeFrac() float64 {
	return (m.maxPower - m.minPower) / m.maxPower
}

// NormPoint is one Fig. 10 scatter point: power and throughput
// normalized to the device's maxima.
type NormPoint struct {
	Power, Throughput float64
	Sample            Sample
}

// Normalized returns the model's points scaled to [0, 1] on both axes,
// the form Fig. 10 plots.
func (m *Model) Normalized() []NormPoint {
	out := make([]NormPoint, len(m.samples))
	for i, s := range m.samples {
		out[i] = NormPoint{
			Power:      s.PowerW / m.maxPower,
			Throughput: s.ThroughputMBps / m.maxTput,
			Sample:     s,
		}
	}
	return out
}

// Filter returns a sub-model containing only samples accepted by keep.
// It returns an error if nothing survives.
func (m *Model) Filter(keep func(Sample) bool) (*Model, error) {
	var subset []Sample
	for _, s := range m.samples {
		if keep(s) {
			subset = append(subset, s)
		}
	}
	return NewModel(m.device, subset)
}

// ParetoFrontier returns the operating points not dominated by any
// other (no other point has power ≤ and throughput >), sorted by
// increasing power. These are the only configurations a rational
// controller ever selects.
func (m *Model) ParetoFrontier() []Sample {
	fr := m.paretoFrontier()
	out := make([]Sample, len(fr))
	copy(out, fr)
	return out
}

// paretoFrontier is the cached, shared-slice form of ParetoFrontier:
// samples never change after NewModel, so the sort-and-scan runs once
// per model instead of once per query. Fleet planning (build,
// peakAssignment) hits this on every re-plan per model; callers must
// not mutate the returned slice. Models are confined to one goroutine
// (a shard, a sweep worker), so the lazy fill needs no lock.
func (m *Model) paretoFrontier() []Sample {
	if m.frontier != nil {
		return m.frontier
	}
	sorted := m.Samples()
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].PowerW != sorted[j].PowerW {
			return sorted[i].PowerW < sorted[j].PowerW
		}
		return sorted[i].ThroughputMBps > sorted[j].ThroughputMBps
	})
	out := sorted[:0]
	best := -1.0
	for _, s := range sorted {
		if s.ThroughputMBps > best {
			out = append(out, s)
			best = s.ThroughputMBps
		}
	}
	m.frontier = out
	return out
}

// BestUnderPower returns the highest-throughput operating point whose
// average power fits the budget. ok is false if no point fits.
func (m *Model) BestUnderPower(budgetW float64) (best Sample, ok bool) {
	for _, s := range m.samples {
		if s.PowerW <= budgetW && (!ok || s.ThroughputMBps > best.ThroughputMBps) {
			best, ok = s, true
		}
	}
	return best, ok
}

// MinPowerMeeting returns the lowest-power operating point that still
// delivers at least the given throughput. ok is false if none does.
func (m *Model) MinPowerMeeting(tputMBps float64) (best Sample, ok bool) {
	for _, s := range m.samples {
		if s.ThroughputMBps >= tputMBps && (!ok || s.PowerW < best.PowerW) {
			best, ok = s, true
		}
	}
	return best, ok
}

// CurtailmentPlan is the paper's §3.3 worked example: to honor a power
// reduction, move from one operating point to another and curtail the
// throughput difference in best-effort load.
type CurtailmentPlan struct {
	From, To       Sample
	PowerSavedW    float64
	CurtailMBps    float64 // best-effort bandwidth that must be shed
	ThroughputKept float64 // fraction of From throughput retained
	PowerReduction float64 // fraction of From power shed
}

// Curtail plans a move from the operating point `from` to the best
// point fitting a power budget of (1-reduceFrac)·from.PowerW.
func (m *Model) Curtail(from Sample, reduceFrac float64) (CurtailmentPlan, error) {
	if reduceFrac <= 0 || reduceFrac >= 1 {
		return CurtailmentPlan{}, fmt.Errorf("core: power reduction %v out of (0,1)", reduceFrac)
	}
	// The plan's ThroughputKept and PowerReduction fractions divide by
	// the from point's throughput and power; a degenerate from sample
	// would make them NaN and poison every downstream aggregate.
	if from.ThroughputMBps <= 0 {
		return CurtailmentPlan{}, fmt.Errorf("core: curtailing from %v with zero throughput — no load to shed", from.Config)
	}
	if from.PowerW <= 0 {
		return CurtailmentPlan{}, fmt.Errorf("core: curtailing from %v with non-positive power %v W", from.Config, from.PowerW)
	}
	budget := from.PowerW * (1 - reduceFrac)
	to, ok := m.BestUnderPower(budget)
	if !ok {
		return CurtailmentPlan{}, fmt.Errorf("core: no %s operating point fits %.2f W", m.device, budget)
	}
	return CurtailmentPlan{
		From:           from,
		To:             to,
		PowerSavedW:    from.PowerW - to.PowerW,
		CurtailMBps:    from.ThroughputMBps - to.ThroughputMBps,
		ThroughputKept: to.ThroughputMBps / from.ThroughputMBps,
		PowerReduction: (from.PowerW - to.PowerW) / from.PowerW,
	}, nil
}
