package core

import (
	"fmt"
	"sort"
)

// Fleet combines the power-throughput models of multiple, possibly
// heterogeneous devices. The paper (§3.3) observes that per-device
// models can be combined to derive the performance Pareto frontier of
// device configurations under a shared power budget — this type does
// that combination.
type Fleet struct {
	models []*Model
	// frontier is the lazily built fleet frontier. Models never change
	// after construction, so the pairwise merge runs once per Fleet no
	// matter how many queries follow (a budget re-plan per control step
	// would otherwise rebuild it every time).
	frontier []*planNode
}

// maxFrontierPoints bounds the merged frontier carried between pairwise
// combination steps. Homogeneous fleets in the hundreds of devices grow
// frontiers quadratic in device count — millions of points that a budget
// query never distinguishes. Thinning to this many points (always
// keeping both endpoints, so the cheapest feasible plan and the peak-
// throughput plan are exact) makes the build O(devices × cap); the
// chosen plan stays within one thinning step of optimal. Small fleets
// never hit the cap, so the exhaustive property tests exercise the
// exact frontier.
const maxFrontierPoints = 1024

// NewFleet builds a fleet over the given models.
func NewFleet(models ...*Model) (*Fleet, error) {
	if len(models) == 0 {
		return nil, fmt.Errorf("core: fleet needs at least one model")
	}
	seen := map[string]bool{}
	for _, m := range models {
		if seen[m.Device()] {
			return nil, fmt.Errorf("core: duplicate device %s in fleet", m.Device())
		}
		seen[m.Device()] = true
	}
	return &Fleet{models: models}, nil
}

// Models returns the fleet's member models.
func (f *Fleet) Models() []*Model { return f.models }

// Assignment is one operating point chosen for every device.
type Assignment struct {
	// Configs maps device label to the chosen operating point.
	Configs map[string]Sample
	// TotalPowerW and TotalMBps are the fleet-wide sums.
	TotalPowerW float64
	TotalMBps   float64
}

// planNode is one point on the merged frontier: this device's choice
// plus a parent link to the choices of the models merged before it.
// Assignments materialize into maps only when a query returns one —
// carrying maps through the merge itself cost a full map copy per
// candidate point and made large-fleet planning quartic.
type planNode struct {
	powerW float64
	mbps   float64
	parent *planNode
	device string
	sample Sample
}

// build computes (once) the fleet frontier as parent-linked nodes,
// combining per-device frontiers pairwise — a pruned Minkowski sum, so
// cost is bounded by the capped frontier size times the device count,
// not by the full configuration cross-product.
func (f *Fleet) build() []*planNode {
	if f.frontier != nil {
		return f.frontier
	}
	acc := []*planNode{{}}
	for _, m := range f.models {
		frontier := m.paretoFrontier()
		next := make([]*planNode, 0, len(acc)*len(frontier))
		for _, a := range acc {
			for _, s := range frontier {
				next = append(next, &planNode{
					powerW: a.powerW + s.PowerW,
					mbps:   a.mbps + s.ThroughputMBps,
					parent: a,
					device: m.Device(),
					sample: s,
				})
			}
		}
		acc = pruneDominated(next)
	}
	f.frontier = acc
	return acc
}

// materialize walks the node's parent chain into a full Assignment.
func (n *planNode) materialize() Assignment {
	a := Assignment{
		Configs:     map[string]Sample{},
		TotalPowerW: n.powerW,
		TotalMBps:   n.mbps,
	}
	for ; n != nil && n.device != ""; n = n.parent {
		a.Configs[n.device] = n.sample
	}
	return a
}

// ParetoFrontier computes the fleet-wide Pareto frontier: assignments of
// one Pareto-optimal configuration per device such that no other
// assignment has both lower total power and higher total throughput.
func (f *Fleet) ParetoFrontier() []Assignment {
	nodes := f.build()
	out := make([]Assignment, len(nodes))
	for i, n := range nodes {
		out[i] = n.materialize()
	}
	return out
}

// pruneDominated keeps only points on the power-throughput Pareto
// frontier, sorted by increasing power, then thins the survivors to the
// frontier cap (endpoints always kept, interior evenly sampled).
func pruneDominated(ns []*planNode) []*planNode {
	sort.Slice(ns, func(i, j int) bool {
		if ns[i].powerW != ns[j].powerW {
			return ns[i].powerW < ns[j].powerW
		}
		return ns[i].mbps > ns[j].mbps
	})
	out := ns[:0]
	best := -1.0
	for _, n := range ns {
		if n.mbps > best {
			out = append(out, n)
			best = n.mbps
		}
	}
	if len(out) <= maxFrontierPoints {
		return out
	}
	thinned := make([]*planNode, 0, maxFrontierPoints)
	last := len(out) - 1
	for i := 0; i < maxFrontierPoints-1; i++ {
		thinned = append(thinned, out[i*last/(maxFrontierPoints-1)])
	}
	return append(thinned, out[last])
}

// BestUnderPower returns the frontier assignment with the highest total
// throughput whose total power fits the budget. ok is false when even
// the lowest-power assignment exceeds the budget.
func (f *Fleet) BestUnderPower(budgetW float64) (best Assignment, ok bool) {
	// Fast path: a budget that admits every device at its peak-throughput
	// point — the "never binds" default schedule — selects the frontier's
	// top endpoint, which is exactly the sum of per-model peaks (each
	// model's frontier strictly increases in both axes, so the all-peak
	// combination uniquely maximizes throughput, and thinning keeps
	// endpoints exact). Answering it directly skips the merged-frontier
	// build, the dominant planning cost at 10⁵-device fleet scale. The
	// sums accumulate in the same model order as the pairwise merge, so
	// the returned totals are bit-identical to the slow path's.
	if a, ok := f.peakAssignment(budgetW); ok {
		return a, true
	}
	var pick *planNode
	for _, n := range f.build() {
		if n.powerW <= budgetW {
			pick = n // frontier is sorted by power, tput increases
		} else {
			break
		}
	}
	if pick == nil {
		return Assignment{}, false
	}
	return pick.materialize(), true
}

// peakAssignment returns every device at its peak-throughput operating
// point, or ok=false when that assignment exceeds the budget (a binding
// budget needs the real frontier).
func (f *Fleet) peakAssignment(budgetW float64) (Assignment, bool) {
	a := Assignment{Configs: make(map[string]Sample, len(f.models))}
	for _, m := range f.models {
		fr := m.paretoFrontier()
		s := fr[len(fr)-1]
		a.Configs[m.Device()] = s
		a.TotalPowerW += s.PowerW
		a.TotalMBps += s.ThroughputMBps
	}
	if a.TotalPowerW > budgetW {
		return Assignment{}, false
	}
	return a, true
}

// MinPowerMeeting returns the frontier assignment with the lowest total
// power delivering at least the given total throughput.
func (f *Fleet) MinPowerMeeting(tputMBps float64) (best Assignment, ok bool) {
	for _, n := range f.build() {
		if n.mbps >= tputMBps {
			return n.materialize(), true
		}
	}
	return Assignment{}, false
}
