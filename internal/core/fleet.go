package core

import (
	"fmt"
	"sort"
)

// Fleet combines the power-throughput models of multiple, possibly
// heterogeneous devices. The paper (§3.3) observes that per-device
// models can be combined to derive the performance Pareto frontier of
// device configurations under a shared power budget — this type does
// that combination.
type Fleet struct {
	models []*Model
}

// NewFleet builds a fleet over the given models.
func NewFleet(models ...*Model) (*Fleet, error) {
	if len(models) == 0 {
		return nil, fmt.Errorf("core: fleet needs at least one model")
	}
	seen := map[string]bool{}
	for _, m := range models {
		if seen[m.Device()] {
			return nil, fmt.Errorf("core: duplicate device %s in fleet", m.Device())
		}
		seen[m.Device()] = true
	}
	return &Fleet{models: models}, nil
}

// Models returns the fleet's member models.
func (f *Fleet) Models() []*Model { return f.models }

// Assignment is one operating point chosen for every device.
type Assignment struct {
	// Configs maps device label to the chosen operating point.
	Configs map[string]Sample
	// TotalPowerW and TotalMBps are the fleet-wide sums.
	TotalPowerW float64
	TotalMBps   float64
}

// ParetoFrontier computes the fleet-wide Pareto frontier: assignments of
// one Pareto-optimal configuration per device such that no other
// assignment has both lower total power and higher total throughput.
//
// It combines per-device frontiers pairwise (a pruned Minkowski sum),
// so cost is bounded by the product of adjacent frontier sizes after
// pruning, not by the full configuration cross-product.
func (f *Fleet) ParetoFrontier() []Assignment {
	acc := []Assignment{{Configs: map[string]Sample{}}}
	for _, m := range f.models {
		frontier := m.ParetoFrontier()
		next := make([]Assignment, 0, len(acc)*len(frontier))
		for _, a := range acc {
			for _, s := range frontier {
				cfgs := make(map[string]Sample, len(a.Configs)+1)
				for k, v := range a.Configs {
					cfgs[k] = v
				}
				cfgs[m.Device()] = s
				next = append(next, Assignment{
					Configs:     cfgs,
					TotalPowerW: a.TotalPowerW + s.PowerW,
					TotalMBps:   a.TotalMBps + s.ThroughputMBps,
				})
			}
		}
		acc = pruneDominated(next)
	}
	return acc
}

// pruneDominated keeps only assignments on the power-throughput Pareto
// frontier, sorted by increasing power.
func pruneDominated(as []Assignment) []Assignment {
	sort.Slice(as, func(i, j int) bool {
		if as[i].TotalPowerW != as[j].TotalPowerW {
			return as[i].TotalPowerW < as[j].TotalPowerW
		}
		return as[i].TotalMBps > as[j].TotalMBps
	})
	var out []Assignment
	best := -1.0
	for _, a := range as {
		if a.TotalMBps > best {
			out = append(out, a)
			best = a.TotalMBps
		}
	}
	return out
}

// BestUnderPower returns the frontier assignment with the highest total
// throughput whose total power fits the budget. ok is false when even
// the lowest-power assignment exceeds the budget.
func (f *Fleet) BestUnderPower(budgetW float64) (best Assignment, ok bool) {
	for _, a := range f.ParetoFrontier() {
		if a.TotalPowerW <= budgetW {
			best, ok = a, true // frontier is sorted by power, tput increases
		} else {
			break
		}
	}
	return best, ok
}

// MinPowerMeeting returns the frontier assignment with the lowest total
// power delivering at least the given total throughput.
func (f *Fleet) MinPowerMeeting(tputMBps float64) (best Assignment, ok bool) {
	for _, a := range f.ParetoFrontier() {
		if a.TotalMBps >= tputMBps {
			return a, true
		}
	}
	return Assignment{}, false
}
