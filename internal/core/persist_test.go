package core

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	t.Parallel()
	orig := testModel(t)
	var buf bytes.Buffer
	if err := orig.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Device() != orig.Device() {
		t.Errorf("device %q != %q", got.Device(), orig.Device())
	}
	a, b := orig.Samples(), got.Samples()
	if len(a) != len(b) {
		t.Fatalf("sample counts %d != %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Errorf("sample %d: %+v != %+v", i, a[i], b[i])
		}
	}
	if got.MaxPowerW() != orig.MaxPowerW() || got.MaxThroughputMBps() != orig.MaxThroughputMBps() {
		t.Error("derived maxima differ after round trip")
	}
}

func TestSaveLoadPreservesLatency(t *testing.T) {
	t.Parallel()
	m, _ := NewModel("D", []Sample{latSample(1, 7, 2500, 1200*time.Microsecond, 3*time.Millisecond)})
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	s := got.Samples()[0]
	if s.AvgLat != 1200*time.Microsecond || s.P99Lat != 3*time.Millisecond {
		t.Errorf("latencies lost: %v / %v", s.AvgLat, s.P99Lat)
	}
}

func TestLoadRejectsBadInput(t *testing.T) {
	t.Parallel()
	cases := map[string]string{
		"garbage":       "not json",
		"wrong version": `{"version": 99, "device": "D", "samples": [{"power_w": 1, "mbps": 1}]}`,
		"unknown field": `{"version": 1, "device": "D", "surprise": true, "samples": []}`,
		"no samples":    `{"version": 1, "device": "D", "samples": []}`,
		"bad power":     `{"version": 1, "device": "D", "samples": [{"power_w": 0, "mbps": 1}]}`,
		"trailing data": `{"version": 1, "device": "D", "samples": [{"power_w": 1, "mbps": 1}]}{"version": 1}`,
		"truncated":     `{"version": 1, "device": "D", "samples": [{"power_w": 1,`,
	}
	for name, in := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := Load(strings.NewReader(in)); err == nil {
				t.Fatalf("Load accepted %s", name)
			}
		})
	}
}
