package core

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func s(dev string, ps int, chunkKiB int64, depth int, w, mbps float64) Sample {
	return Sample{
		Config:         Config{Device: dev, PowerState: ps, Random: true, Write: true, ChunkBytes: chunkKiB * 1024, Depth: depth},
		PowerW:         w,
		ThroughputMBps: mbps,
	}
}

func testModel(t *testing.T) *Model {
	t.Helper()
	m, err := NewModel("D", []Sample{
		s("D", 0, 4, 1, 5.5, 300),
		s("D", 0, 256, 1, 6.5, 2100),
		s("D", 0, 256, 64, 8.2, 3500),
		s("D", 0, 2048, 64, 8.4, 3500),
		s("D", 1, 256, 64, 7.0, 2500),
		s("D", 2, 256, 64, 6.0, 1900),
		s("D", 2, 4, 1, 5.2, 290),
	})
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewModelValidation(t *testing.T) {
	t.Parallel()
	if _, err := NewModel("D", nil); err == nil {
		t.Error("empty model accepted")
	}
	if _, err := NewModel("D", []Sample{s("X", 0, 4, 1, 5, 10)}); err == nil {
		t.Error("wrong-device sample accepted")
	}
	if _, err := NewModel("D", []Sample{s("D", 0, 4, 1, 0, 10)}); err == nil {
		t.Error("zero-power sample accepted")
	}
	if _, err := NewModel("D", []Sample{s("D", 0, 4, 1, 5, -1)}); err == nil {
		t.Error("negative-throughput sample accepted")
	}
}

func TestModelExtremes(t *testing.T) {
	t.Parallel()
	m := testModel(t)
	if m.MaxPowerW() != 8.4 || m.MinPowerW() != 5.2 {
		t.Errorf("power extremes = %v/%v, want 5.2/8.4", m.MinPowerW(), m.MaxPowerW())
	}
	if m.MaxThroughputMBps() != 3500 {
		t.Errorf("max tput = %v", m.MaxThroughputMBps())
	}
	want := (8.4 - 5.2) / 8.4
	if got := m.DynamicRangeFrac(); math.Abs(got-want) > 1e-12 {
		t.Errorf("dynamic range = %v, want %v", got, want)
	}
}

func TestNormalized(t *testing.T) {
	t.Parallel()
	m := testModel(t)
	pts := m.Normalized()
	var sawUnitPower, sawUnitTput bool
	for _, p := range pts {
		if p.Power < 0 || p.Power > 1 || p.Throughput < 0 || p.Throughput > 1 {
			t.Fatalf("point outside unit square: %+v", p)
		}
		if p.Power == 1 {
			sawUnitPower = true
		}
		if p.Throughput == 1 {
			sawUnitTput = true
		}
	}
	if !sawUnitPower || !sawUnitTput {
		t.Error("normalization did not map maxima to 1")
	}
}

func TestParetoFrontier(t *testing.T) {
	t.Parallel()
	m := testModel(t)
	fr := m.ParetoFrontier()
	if len(fr) == 0 {
		t.Fatal("empty frontier")
	}
	// Sorted by power, strictly increasing throughput.
	for i := 1; i < len(fr); i++ {
		if fr[i].PowerW < fr[i-1].PowerW {
			t.Error("frontier not sorted by power")
		}
		if fr[i].ThroughputMBps <= fr[i-1].ThroughputMBps {
			t.Error("frontier throughput not strictly increasing")
		}
	}
	// The 8.4 W / 3500 MBps point is dominated by 8.2 W / 3500 MBps.
	for _, f := range fr {
		if f.PowerW == 8.4 {
			t.Error("dominated point on frontier")
		}
	}
}

// Property: no frontier point is dominated by any sample.
func TestParetoFrontierProperty(t *testing.T) {
	t.Parallel()
	f := func(raw []struct{ P, T uint16 }) bool {
		if len(raw) == 0 {
			return true
		}
		samples := make([]Sample, len(raw))
		for i, r := range raw {
			samples[i] = s("D", 0, 4, 1, float64(r.P)+1, float64(r.T))
		}
		m, err := NewModel("D", samples)
		if err != nil {
			return false
		}
		for _, fp := range m.ParetoFrontier() {
			for _, sp := range samples {
				if sp.PowerW <= fp.PowerW && sp.ThroughputMBps > fp.ThroughputMBps {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestBestUnderPower(t *testing.T) {
	t.Parallel()
	m := testModel(t)
	best, ok := m.BestUnderPower(7.0)
	if !ok {
		t.Fatal("no point under 7 W")
	}
	if best.ThroughputMBps != 2500 {
		t.Errorf("best under 7 W = %v MBps, want 2500", best.ThroughputMBps)
	}
	if _, ok := m.BestUnderPower(1.0); ok {
		t.Error("found point under 1 W")
	}
}

func TestMinPowerMeeting(t *testing.T) {
	t.Parallel()
	m := testModel(t)
	best, ok := m.MinPowerMeeting(2000)
	if !ok {
		t.Fatal("no point meeting 2000 MBps")
	}
	if best.PowerW != 6.5 {
		t.Errorf("min power for 2000 MBps = %v, want 6.5 (2100 MBps point)", best.PowerW)
	}
	if _, ok := m.MinPowerMeeting(9999); ok {
		t.Error("met impossible throughput")
	}
}

func TestCurtail(t *testing.T) {
	t.Parallel()
	m := testModel(t)
	from, _ := m.BestUnderPower(8.2)
	plan, err := m.Curtail(from, 0.20)
	if err != nil {
		t.Fatal(err)
	}
	if plan.To.PowerW > from.PowerW*0.8+1e-9 {
		t.Errorf("curtailed point %v W exceeds 80%% budget of %v W", plan.To.PowerW, from.PowerW)
	}
	if plan.CurtailMBps != from.ThroughputMBps-plan.To.ThroughputMBps {
		t.Error("curtail bandwidth inconsistent")
	}
	if plan.ThroughputKept <= 0 || plan.ThroughputKept > 1 {
		t.Errorf("throughput kept = %v", plan.ThroughputKept)
	}
}

func TestCurtailValidation(t *testing.T) {
	t.Parallel()
	m := testModel(t)
	from, _ := m.BestUnderPower(9)
	if _, err := m.Curtail(from, 0); err == nil {
		t.Error("zero reduction accepted")
	}
	if _, err := m.Curtail(from, 1); err == nil {
		t.Error("unit reduction accepted")
	}
	if _, err := m.Curtail(from, 0.99); err == nil {
		t.Error("reduction below minimum power accepted")
	}
	// Degenerate from points: the plan's kept/reduction fractions
	// divide by the from throughput and power, so zero either way
	// must be a descriptive error rather than NaN.
	idle := s("D", 0, 256, 64, 5.0, 0)
	if _, err := m.Curtail(idle, 0.2); err == nil {
		t.Error("zero-throughput from point accepted")
	}
	unpowered := s("D", 0, 256, 64, 0, 1000)
	if _, err := m.Curtail(unpowered, 0.2); err == nil {
		t.Error("zero-power from point accepted")
	}
}

func TestFilter(t *testing.T) {
	t.Parallel()
	m := testModel(t)
	ps2, err := m.Filter(func(x Sample) bool { return x.PowerState == 2 })
	if err != nil {
		t.Fatal(err)
	}
	if len(ps2.Samples()) != 2 {
		t.Errorf("filtered model has %d samples, want 2", len(ps2.Samples()))
	}
	if _, err := m.Filter(func(Sample) bool { return false }); err == nil {
		t.Error("empty filter result accepted")
	}
}

func TestConfigString(t *testing.T) {
	t.Parallel()
	c := Config{Device: "SSD2", PowerState: 1, Random: true, Write: true, ChunkBytes: 256 * 1024, Depth: 64}
	if got := c.String(); got != "SSD2/ps1/randwrite-256KiB-qd64" {
		t.Errorf("String = %q", got)
	}
	c2 := Config{Device: "HDD", ChunkBytes: 4096, Depth: 1}
	if got := c2.String(); got != "HDD/ps0/seqread-4KiB-qd1" {
		t.Errorf("String = %q", got)
	}
}

func TestFleetFrontier(t *testing.T) {
	t.Parallel()
	a, _ := NewModel("A", []Sample{
		s("A", 0, 4, 1, 2, 100),
		s("A", 0, 4, 64, 4, 400),
	})
	b, _ := NewModel("B", []Sample{
		s("B", 0, 4, 1, 3, 50),
		s("B", 0, 4, 64, 5, 500),
	})
	f, err := NewFleet(a, b)
	if err != nil {
		t.Fatal(err)
	}
	fr := f.ParetoFrontier()
	// Candidate sums: (5,150) (7,600) (7,450) (9,900) → frontier drops (7,450).
	if len(fr) != 3 {
		t.Fatalf("frontier has %d assignments, want 3: %+v", len(fr), fr)
	}
	wantP := []float64{5, 7, 9}
	wantT := []float64{150, 600, 900}
	for i := range fr {
		if fr[i].TotalPowerW != wantP[i] || fr[i].TotalMBps != wantT[i] {
			t.Errorf("frontier[%d] = (%.0f W, %.0f MBps), want (%.0f, %.0f)",
				i, fr[i].TotalPowerW, fr[i].TotalMBps, wantP[i], wantT[i])
		}
		if len(fr[i].Configs) != 2 {
			t.Errorf("assignment %d covers %d devices, want 2", i, len(fr[i].Configs))
		}
	}
}

func TestFleetBestUnderPower(t *testing.T) {
	t.Parallel()
	a, _ := NewModel("A", []Sample{s("A", 0, 4, 1, 2, 100), s("A", 0, 4, 64, 4, 400)})
	b, _ := NewModel("B", []Sample{s("B", 0, 4, 1, 3, 50), s("B", 0, 4, 64, 5, 500)})
	f, _ := NewFleet(a, b)
	best, ok := f.BestUnderPower(8)
	if !ok || best.TotalMBps != 600 {
		t.Errorf("best under 8 W = %+v, want 600 MBps", best)
	}
	if _, ok := f.BestUnderPower(4); ok {
		t.Error("fit under impossible budget")
	}
}

func TestFleetMinPowerMeeting(t *testing.T) {
	t.Parallel()
	a, _ := NewModel("A", []Sample{s("A", 0, 4, 1, 2, 100), s("A", 0, 4, 64, 4, 400)})
	b, _ := NewModel("B", []Sample{s("B", 0, 4, 1, 3, 50), s("B", 0, 4, 64, 5, 500)})
	f, _ := NewFleet(a, b)
	got, ok := f.MinPowerMeeting(500)
	if !ok || got.TotalPowerW != 7 {
		t.Errorf("min power for 500 MBps = %+v, want 7 W", got)
	}
	if _, ok := f.MinPowerMeeting(1e9); ok {
		t.Error("met impossible fleet throughput")
	}
}

func TestFleetValidation(t *testing.T) {
	t.Parallel()
	if _, err := NewFleet(); err == nil {
		t.Error("empty fleet accepted")
	}
	a, _ := NewModel("A", []Sample{s("A", 0, 4, 1, 2, 100)})
	a2, _ := NewModel("A", []Sample{s("A", 0, 4, 1, 3, 100)})
	if _, err := NewFleet(a, a2); err == nil {
		t.Error("duplicate device accepted")
	}
}

// Property: fleet frontier is sorted and non-dominated.
func TestFleetFrontierProperty(t *testing.T) {
	t.Parallel()
	f := func(pa, pb []struct{ P, T uint8 }) bool {
		if len(pa) == 0 || len(pb) == 0 {
			return true
		}
		mk := func(dev string, pts []struct{ P, T uint8 }) *Model {
			ss := make([]Sample, len(pts))
			for i, p := range pts {
				ss[i] = s(dev, 0, 4, 1, float64(p.P)+1, float64(p.T))
			}
			m, _ := NewModel(dev, ss)
			return m
		}
		fl, err := NewFleet(mk("A", pa), mk("B", pb))
		if err != nil {
			return false
		}
		fr := fl.ParetoFrontier()
		if !sort.SliceIsSorted(fr, func(i, j int) bool { return fr[i].TotalPowerW < fr[j].TotalPowerW }) {
			return false
		}
		for i := 1; i < len(fr); i++ {
			if fr[i].TotalMBps <= fr[i-1].TotalMBps {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Cross-check: the pruned pairwise fleet frontier must agree with a
// brute-force enumeration of the full configuration cross-product.
func TestFleetFrontierMatchesBruteForce(t *testing.T) {
	t.Parallel()
	f := func(pa, pb, pc []struct{ P, T uint8 }) bool {
		if len(pa) == 0 || len(pb) == 0 || len(pc) == 0 {
			return true
		}
		trim := func(x []struct{ P, T uint8 }) []struct{ P, T uint8 } {
			if len(x) > 6 {
				return x[:6]
			}
			return x
		}
		pa, pb, pc = trim(pa), trim(pb), trim(pc)
		mk := func(dev string, pts []struct{ P, T uint8 }) *Model {
			ss := make([]Sample, len(pts))
			for i, p := range pts {
				ss[i] = s(dev, 0, 4, 1, float64(p.P)+1, float64(p.T))
			}
			m, _ := NewModel(dev, ss)
			return m
		}
		ma, mb, mc := mk("A", pa), mk("B", pb), mk("C", pc)
		fl, err := NewFleet(ma, mb, mc)
		if err != nil {
			return false
		}
		got := fl.ParetoFrontier()

		// Brute force over the cross-product.
		type pt struct{ p, t float64 }
		var all []pt
		for _, a := range ma.Samples() {
			for _, b := range mb.Samples() {
				for _, c := range mc.Samples() {
					all = append(all, pt{a.PowerW + b.PowerW + c.PowerW, a.ThroughputMBps + b.ThroughputMBps + c.ThroughputMBps})
				}
			}
		}
		dominated := func(x pt) bool {
			for _, y := range all {
				if y.p <= x.p && y.t > x.t {
					return true
				}
			}
			return false
		}
		// Every frontier point must be non-dominated...
		for _, g := range got {
			if dominated(pt{g.TotalPowerW, g.TotalMBps}) {
				return false
			}
		}
		// ...and every non-dominated throughput level must be reachable
		// at no more power than the frontier charges for it.
		for _, x := range all {
			if dominated(x) {
				continue
			}
			found := false
			for _, g := range got {
				if g.TotalMBps >= x.t && g.TotalPowerW <= x.p {
					found = true
					break
				}
			}
			if !found {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
