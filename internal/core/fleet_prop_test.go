package core

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
)

// Property-based hardening of the fleet planning layer: for seeded
// random fleets, the pruned-Minkowski ParetoFrontier and the queries on
// it are checked against brute-force enumeration of the full per-device
// configuration cross-product. Sample values are drawn on a quarter-watt
// grid and both sides fold sums in the same device order, so reference
// and implementation agree bitwise and no tolerance can mask a bug.

// randFleet builds a random fleet of 1-4 devices with 1-5 samples each.
func randFleet(t *testing.T, r *rand.Rand) *Fleet {
	t.Helper()
	nDev := 1 + r.Intn(4)
	models := make([]*Model, nDev)
	for d := range models {
		name := fmt.Sprintf("dev%d", d)
		samples := make([]Sample, 1+r.Intn(5))
		for i := range samples {
			samples[i] = Sample{
				Config: Config{Device: name, PowerState: i, Random: true, Write: true,
					ChunkBytes: 256 << 10, Depth: 64},
				PowerW:         0.25 * float64(1+r.Intn(80)),  // 0.25..20 W
				ThroughputMBps: 0.25 * float64(r.Intn(16001)), // 0..4000 MB/s
			}
		}
		m, err := NewModel(name, samples)
		if err != nil {
			t.Fatal(err)
		}
		models[d] = m
	}
	f, err := NewFleet(models...)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// crossProduct enumerates every full assignment (one sample per device),
// folding totals in model order exactly like ParetoFrontier does.
func crossProduct(f *Fleet) []Assignment {
	acc := []Assignment{{Configs: map[string]Sample{}}}
	for _, m := range f.Models() {
		var next []Assignment
		for _, a := range acc {
			for _, s := range m.Samples() {
				cfgs := make(map[string]Sample, len(a.Configs)+1)
				for k, v := range a.Configs {
					cfgs[k] = v
				}
				cfgs[m.Device()] = s
				next = append(next, Assignment{
					Configs:     cfgs,
					TotalPowerW: a.TotalPowerW + s.PowerW,
					TotalMBps:   a.TotalMBps + s.ThroughputMBps,
				})
			}
		}
		acc = next
	}
	return acc
}

func dominates(a, b Assignment) bool {
	return a.TotalPowerW <= b.TotalPowerW && a.TotalMBps >= b.TotalMBps &&
		(a.TotalPowerW < b.TotalPowerW || a.TotalMBps > b.TotalMBps)
}

type pt struct{ p, t float64 }

// refFrontier is the brute-force frontier: the deduplicated
// (power, throughput) pairs of non-dominated full assignments.
func refFrontier(all []Assignment) map[pt]bool {
	out := map[pt]bool{}
	for _, a := range all {
		dominated := false
		for _, b := range all {
			if dominates(b, a) {
				dominated = true
				break
			}
		}
		if !dominated {
			out[pt{a.TotalPowerW, a.TotalMBps}] = true
		}
	}
	return out
}

func TestParetoFrontierMatchesBruteForce(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		r := rand.New(rand.NewSource(seed))
		f := randFleet(t, r)
		frontier := f.ParetoFrontier()
		all := crossProduct(f)
		want := refFrontier(all)

		got := map[pt]bool{}
		for _, a := range frontier {
			// Each frontier assignment must be internally consistent:
			// totals re-derivable from its per-device configs.
			var p, tp float64
			for _, m := range f.Models() {
				s, ok := a.Configs[m.Device()]
				if !ok {
					t.Fatalf("seed %d: frontier assignment missing device %s", seed, m.Device())
				}
				p += s.PowerW
				tp += s.ThroughputMBps
			}
			if p != a.TotalPowerW || tp != a.TotalMBps {
				t.Fatalf("seed %d: totals (%v W, %v MB/s) != config sums (%v, %v)",
					seed, a.TotalPowerW, a.TotalMBps, p, tp)
			}
			if got[pt{p, tp}] {
				t.Fatalf("seed %d: duplicate frontier point (%v W, %v MB/s)", seed, p, tp)
			}
			got[pt{p, tp}] = true
		}

		// Soundness: every returned point is non-dominated.
		for g := range got {
			if !want[g] {
				t.Errorf("seed %d: frontier point (%v W, %v MB/s) is dominated or unreachable", seed, g.p, g.t)
			}
		}
		// Completeness: every non-dominated point is returned.
		for w := range want {
			if !got[w] {
				t.Errorf("seed %d: non-dominated point (%v W, %v MB/s) missing from frontier", seed, w.p, w.t)
			}
		}
		// Ordering: sorted by strictly increasing power AND throughput.
		for i := 1; i < len(frontier); i++ {
			if frontier[i].TotalPowerW <= frontier[i-1].TotalPowerW ||
				frontier[i].TotalMBps <= frontier[i-1].TotalMBps {
				t.Errorf("seed %d: frontier not strictly increasing at %d: (%v, %v) then (%v, %v)",
					seed, i, frontier[i-1].TotalPowerW, frontier[i-1].TotalMBps,
					frontier[i].TotalPowerW, frontier[i].TotalMBps)
			}
		}
	}
}

func TestBestUnderPowerOptimal(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		r := rand.New(rand.NewSource(seed))
		f := randFleet(t, r)
		all := crossProduct(f)

		// Probe budgets around every achievable power level, plus the
		// unsatisfiable low end and the unconstrained high end.
		budgets := []float64{0, 1e9}
		for _, a := range all {
			budgets = append(budgets, a.TotalPowerW, a.TotalPowerW-0.01, a.TotalPowerW+0.01)
		}
		for _, budget := range budgets {
			best, ok := f.BestUnderPower(budget)

			refOK := false
			refTput := 0.0
			for _, a := range all {
				if a.TotalPowerW <= budget && (!refOK || a.TotalMBps > refTput) {
					refOK, refTput = true, a.TotalMBps
				}
			}
			if ok != refOK {
				t.Fatalf("seed %d budget %v: ok=%v, brute force %v", seed, budget, ok, refOK)
			}
			if !ok {
				continue
			}
			if best.TotalPowerW > budget {
				t.Fatalf("seed %d: BestUnderPower(%v) exceeds budget: %v W", seed, budget, best.TotalPowerW)
			}
			if best.TotalMBps != refTput {
				t.Fatalf("seed %d budget %v: throughput %v, brute-force optimum %v",
					seed, budget, best.TotalMBps, refTput)
			}
		}
	}
}

// TestBestUnderPowerPeakFastPath pins the unconstrained-budget fast
// path to the frontier endpoint it replaces: same per-device operating
// points and bitwise-identical totals (both fold sums in model order).
func TestBestUnderPowerPeakFastPath(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		r := rand.New(rand.NewSource(seed))
		f := randFleet(t, r)
		fast, ok := f.BestUnderPower(1e9)
		if !ok {
			t.Fatalf("seed %d: unconstrained budget infeasible", seed)
		}
		nodes := f.build()
		slow := nodes[len(nodes)-1].materialize()
		if fast.TotalPowerW != slow.TotalPowerW || fast.TotalMBps != slow.TotalMBps {
			t.Fatalf("seed %d: fast path (%v W, %v MB/s) != frontier endpoint (%v W, %v MB/s)",
				seed, fast.TotalPowerW, fast.TotalMBps, slow.TotalPowerW, slow.TotalMBps)
		}
		if !reflect.DeepEqual(fast.Configs, slow.Configs) {
			t.Fatalf("seed %d: fast path configs differ from frontier endpoint", seed)
		}
	}
}

func TestMinPowerMeetingOptimalAndMonotone(t *testing.T) {
	for seed := int64(0); seed < 60; seed++ {
		r := rand.New(rand.NewSource(seed))
		f := randFleet(t, r)
		all := crossProduct(f)

		targets := []float64{0, 1e9}
		for _, a := range all {
			targets = append(targets, a.TotalMBps, a.TotalMBps-0.01, a.TotalMBps+0.01)
		}
		for _, target := range targets {
			got, ok := f.MinPowerMeeting(target)

			refOK := false
			refPower := 0.0
			for _, a := range all {
				if a.TotalMBps >= target && (!refOK || a.TotalPowerW < refPower) {
					refOK, refPower = true, a.TotalPowerW
				}
			}
			if ok != refOK {
				t.Fatalf("seed %d target %v: ok=%v, brute force %v", seed, target, ok, refOK)
			}
			if !ok {
				continue
			}
			if got.TotalMBps < target {
				t.Fatalf("seed %d: MinPowerMeeting(%v) undershoots: %v MB/s", seed, target, got.TotalMBps)
			}
			if got.TotalPowerW != refPower {
				t.Fatalf("seed %d target %v: power %v, brute-force optimum %v",
					seed, target, got.TotalPowerW, refPower)
			}
		}

		// Monotonicity: a higher throughput target can never need less
		// power, and once infeasible it stays infeasible.
		maxT := 0.0
		for _, a := range all {
			if a.TotalMBps > maxT {
				maxT = a.TotalMBps
			}
		}
		prevPower := -1.0
		infeasible := false
		for i := 0; i <= 50; i++ {
			target := maxT * float64(i) / 40 // runs past the feasible range
			a, ok := f.MinPowerMeeting(target)
			if infeasible && ok {
				t.Fatalf("seed %d: target %v feasible after a lower target was not", seed, target)
			}
			if !ok {
				infeasible = true
				continue
			}
			if a.TotalPowerW < prevPower {
				t.Fatalf("seed %d: required power fell from %v to %v W as target rose to %v",
					seed, prevPower, a.TotalPowerW, target)
			}
			prevPower = a.TotalPowerW
		}
	}
}
