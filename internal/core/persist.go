package core

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// Model persistence: a measurement campaign is expensive (hours on real
// hardware, minutes simulated), and the resulting model is what a
// production power controller actually consumes. Models serialize to a
// versioned JSON document so they can be built once and shipped.

// modelDoc is the on-disk form.
type modelDoc struct {
	Version int         `json:"version"`
	Device  string      `json:"device"`
	Samples []sampleDoc `json:"samples"`
}

type sampleDoc struct {
	PowerState int     `json:"power_state"`
	Random     bool    `json:"random"`
	Write      bool    `json:"write"`
	ChunkBytes int64   `json:"chunk_bytes"`
	Depth      int     `json:"depth"`
	PowerW     float64 `json:"power_w"`
	MBps       float64 `json:"mbps"`
	AvgLatNs   int64   `json:"avg_lat_ns,omitempty"`
	P99LatNs   int64   `json:"p99_lat_ns,omitempty"`
}

// persistVersion guards against silently reading future formats.
const persistVersion = 1

// Save writes the model as versioned JSON.
func (m *Model) Save(w io.Writer) error {
	doc := modelDoc{Version: persistVersion, Device: m.device}
	for _, s := range m.samples {
		doc.Samples = append(doc.Samples, sampleDoc{
			PowerState: s.PowerState,
			Random:     s.Random,
			Write:      s.Write,
			ChunkBytes: s.ChunkBytes,
			Depth:      s.Depth,
			PowerW:     s.PowerW,
			MBps:       s.ThroughputMBps,
			AvgLatNs:   s.AvgLat.Nanoseconds(),
			P99LatNs:   s.P99Lat.Nanoseconds(),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(doc)
}

// Load reads a model written by Save, revalidating every sample.
func Load(r io.Reader) (*Model, error) {
	var doc modelDoc
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("core: decoding model: %w", err)
	}
	// A model file is exactly one document. json.Decoder stops at the
	// end of the first value, so without this check a file with junk
	// appended — a failed concatenation, a partial overwrite — would
	// load silently.
	if _, err := dec.Token(); err != io.EOF {
		return nil, fmt.Errorf("core: trailing data after model document")
	}
	if doc.Version != persistVersion {
		return nil, fmt.Errorf("core: model version %d, this build reads %d", doc.Version, persistVersion)
	}
	samples := make([]Sample, len(doc.Samples))
	for i, d := range doc.Samples {
		samples[i] = Sample{
			Config: Config{
				Device:     doc.Device,
				PowerState: d.PowerState,
				Random:     d.Random,
				Write:      d.Write,
				ChunkBytes: d.ChunkBytes,
				Depth:      d.Depth,
			},
			PowerW:         d.PowerW,
			ThroughputMBps: d.MBps,
			AvgLat:         time.Duration(d.AvgLatNs),
			P99Lat:         time.Duration(d.P99LatNs),
		}
	}
	return NewModel(doc.Device, samples)
}
