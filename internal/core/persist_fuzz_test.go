package core

import (
	"bytes"
	"reflect"
	"testing"
	"time"
)

// FuzzModelRoundTrip feeds arbitrary bytes to Load; whenever they parse
// as a model, the persist cycle must be a fixed point: Save→Load→Save
// reproduces the same bytes and the same model. This pins the format
// against lossy field mappings and validation that accepts what Save
// then cannot re-emit.
func FuzzModelRoundTrip(f *testing.F) {
	seed, err := NewModel("SSD2", []Sample{
		{
			Config:         Config{Device: "SSD2", PowerState: 2, Random: true, Write: true, ChunkBytes: 256 << 10, Depth: 64},
			PowerW:         10.05,
			ThroughputMBps: 1834.7,
			AvgLat:         913 * time.Microsecond,
			P99Lat:         8200 * time.Microsecond,
		},
		{
			Config:         Config{Device: "SSD2", ChunkBytes: 4 << 10, Depth: 1},
			PowerW:         5.2,
			ThroughputMBps: 88.1,
		},
	})
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := seed.Save(&buf); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(`{"version":1,"device":"d","samples":[{"chunk_bytes":512,"depth":1,"power_w":1,"mbps":0}]}`))
	f.Add([]byte(`{"version":2,"device":"d","samples":[]}`))
	f.Add([]byte(`not json`))

	f.Fuzz(func(t *testing.T, data []byte) {
		m1, err := Load(bytes.NewReader(data))
		if err != nil {
			return // invalid inputs must be rejected, not crash
		}
		var s1 bytes.Buffer
		if err := m1.Save(&s1); err != nil {
			t.Fatalf("loaded model fails Save: %v", err)
		}
		m2, err := Load(bytes.NewReader(s1.Bytes()))
		if err != nil {
			t.Fatalf("Save output fails Load: %v\n%s", err, s1.Bytes())
		}
		if !reflect.DeepEqual(m1, m2) {
			t.Errorf("model changed across Save/Load:\nfirst:  %#v\nsecond: %#v", m1, m2)
		}
		var s2 bytes.Buffer
		if err := m2.Save(&s2); err != nil {
			t.Fatalf("reloaded model fails Save: %v", err)
		}
		if !bytes.Equal(s1.Bytes(), s2.Bytes()) {
			t.Errorf("persisted bytes not a fixed point:\nfirst:\n%s\nsecond:\n%s", s1.Bytes(), s2.Bytes())
		}
	})
}
