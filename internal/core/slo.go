package core

import (
	"fmt"
	"time"
)

// The paper (§4): "For latency, a similar model can be drawn from the
// measurement results." This file adds latency-aware queries: the same
// Pareto/budget machinery, but constrained by service-level objectives
// on average or tail latency.

// SLO is a service-level objective an operating point must satisfy.
// Zero fields are unconstrained.
type SLO struct {
	MaxAvgLat time.Duration
	MaxP99Lat time.Duration
	MinMBps   float64
}

// Meets reports whether the sample satisfies the SLO.
func (s SLO) Meets(x Sample) bool {
	if s.MaxAvgLat > 0 && x.AvgLat > s.MaxAvgLat {
		return false
	}
	if s.MaxP99Lat > 0 && x.P99Lat > s.MaxP99Lat {
		return false
	}
	if s.MinMBps > 0 && x.ThroughputMBps < s.MinMBps {
		return false
	}
	return true
}

// String renders the SLO compactly.
func (s SLO) String() string {
	out := ""
	if s.MaxAvgLat > 0 {
		out += fmt.Sprintf("avg≤%v ", s.MaxAvgLat)
	}
	if s.MaxP99Lat > 0 {
		out += fmt.Sprintf("p99≤%v ", s.MaxP99Lat)
	}
	if s.MinMBps > 0 {
		out += fmt.Sprintf("tput≥%.0fMBps ", s.MinMBps)
	}
	if out == "" {
		return "unconstrained"
	}
	return out[:len(out)-1]
}

// BestUnderPowerSLO returns the highest-throughput operating point that
// fits the power budget and satisfies the SLO.
func (m *Model) BestUnderPowerSLO(budgetW float64, slo SLO) (best Sample, ok bool) {
	for _, s := range m.samples {
		if s.PowerW > budgetW || !slo.Meets(s) {
			continue
		}
		if !ok || s.ThroughputMBps > best.ThroughputMBps {
			best, ok = s, true
		}
	}
	return best, ok
}

// MinPowerSLO returns the lowest-power operating point satisfying the
// SLO — the configuration a power-shedding controller should pick when
// it must preserve a latency guarantee.
func (m *Model) MinPowerSLO(slo SLO) (best Sample, ok bool) {
	for _, s := range m.samples {
		if !slo.Meets(s) {
			continue
		}
		if !ok || s.PowerW < best.PowerW {
			best, ok = s, true
		}
	}
	return best, ok
}

// PowerLatencyFrontier returns the points not dominated in the
// (power, p99 latency) plane: no other point has both lower power and
// lower tail latency. Sorted by increasing power.
func (m *Model) PowerLatencyFrontier() []Sample {
	sorted := m.Samples()
	// Points without latency data cannot sit on a latency frontier.
	filtered := sorted[:0]
	for _, s := range sorted {
		if s.P99Lat > 0 {
			filtered = append(filtered, s)
		}
	}
	sortByPowerThenLat(filtered)
	var out []Sample
	best := time.Duration(1<<63 - 1)
	for _, s := range filtered {
		if s.P99Lat < best {
			out = append(out, s)
			best = s.P99Lat
		}
	}
	return out
}

func sortByPowerThenLat(xs []Sample) {
	// Insertion sort keeps this dependency-free and stable; frontier
	// inputs are small (≤ a few hundred points).
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0; j-- {
			a, b := xs[j-1], xs[j]
			if b.PowerW < a.PowerW || (b.PowerW == a.PowerW && b.P99Lat < a.P99Lat) {
				xs[j-1], xs[j] = b, a
			} else {
				break
			}
		}
	}
}
