package sim

import (
	"fmt"
	"time"
)

// Chain is an event FIFO for a serialized resource: a source whose
// event times are non-decreasing by construction (a device command
// unit, a host link, a NAND die — anything reserved through a
// busy-until horizon). Because the source's events are already in fire
// order relative to each other, they do not need individual slots in
// the engine's priority queue: the Chain buffers them in a ring and
// keeps exactly one representative Timer in the heap, carrying the head
// event's (time, seq) key. Each fire pops the head and re-keys the
// representative to the next event.
//
// This turns the dominant event class in device-saturated runs from a
// heap push + pop over an O(pending-IO) queue into an O(1) ring append
// and shrinks the heap to roughly one entry per resource, which is the
// difference between sift loops walking DRAM and walking L1.
//
// Determinism contract: Chain.Post consumes one scheduling sequence
// number exactly like Engine.Post, and the representative always
// carries the head's original (time, seq), so the global fire order —
// including FIFO ordering among co-timed events on different chains or
// plain timers — is bit-for-bit the order the same Posts would have
// produced through the heap.
type Chain struct {
	eng    *Engine
	rep    *Timer
	ring   []chainEv
	head   int
	n      int
	last   time.Duration // most recently queued time, for the monotonicity check
	parked bool
}

type chainEv struct {
	at  time.Duration
	seq uint64
	fn  func()
}

// NewChain returns an empty chain on the engine. The caller must only
// post non-decreasing times to it.
func (e *Engine) NewChain() *Chain {
	c := &Chain{eng: e, ring: make([]chainEv, 16)}
	c.rep = &Timer{eng: e, index: -1}
	c.rep.chain = c
	return c
}

// Post schedules fn at absolute virtual time at, which must be no
// earlier than both the current time and the chain's most recently
// posted time. Fire-and-forget: chain events cannot be stopped.
func (c *Chain) Post(at time.Duration, fn func()) {
	e := c.eng
	e.checkSchedule(at, fn)
	if at < c.last {
		panic(fmt.Sprintf("sim: chain post at %v before prior post at %v", at, c.last))
	}
	c.last = at
	seq := e.seq
	e.seq++
	if c.n == len(c.ring) {
		c.grow()
	}
	c.ring[(c.head+c.n)&(len(c.ring)-1)] = chainEv{at, seq, fn}
	c.n++
	if c.n == 1 && !c.parked {
		c.rep.at, c.rep.seq = at, seq
		e.armRep(c.rep)
	} else {
		e.chainExtra++
	}
}

// PostLoose schedules fn at absolute time at, riding the chain when at
// preserves the chain's time order and falling back to a plain engine
// Post when it does not (an admission horizon can move backward when a
// power-state change swaps the regulator). One sequence number is
// consumed either way, and fire order is (time, seq) regardless of
// which structure carries the event, so the routing choice is invisible
// to the simulation.
func (c *Chain) PostLoose(at time.Duration, fn func()) {
	if at < c.last {
		c.eng.Post(at, fn)
		return
	}
	c.Post(at, fn)
}

// Len returns the number of events buffered on the chain.
func (c *Chain) Len() int { return c.n }

// Parked reports whether the chain's dispatch is suspended.
func (c *Chain) Parked() bool { return c.parked }

// Park suspends the chain's dispatch: its representative leaves the
// engine's queues (near heap, timing wheel, or overflow list) while
// every buffered event — times, sequence numbers, and callbacks — is
// preserved in the ring. A parked chain accepts further Posts, which
// buffer without arming. Parked events still count toward Pending, but
// the engine will not fire them and RunUntil/Run will pass them by:
// that is the point — the mesoscale tier parks a quiesced device's
// chains so its serialized resources stop costing heap traffic, and
// the aggregate layer answers for the interval instead.
//
// Park is idempotent. Park followed by Unpark before virtual time
// reaches the head event is exactly a no-op for the fire order: the
// representative re-arms with the head's original (time, seq) key.
func (c *Chain) Park() {
	if c.parked {
		return
	}
	c.parked = true
	if c.n == 0 {
		return
	}
	e := c.eng
	rep := c.rep
	if rep.index >= 0 {
		e.heapRemove(rep.index)
	} else {
		e.wheelRemove(rep)
	}
	// The head is no longer represented anywhere; count it with the
	// buffered tail so Pending stays exact.
	e.chainExtra++
}

// Unpark resumes the chain's dispatch, re-filing the representative
// with the head event's original (time, seq) key so the global fire
// order is exactly what it would have been had the chain never parked.
// It panics if virtual time has passed the head event — firing it would
// run causality backward; the caller owns not sleeping through its own
// schedule (the serving tier only parks drained chains, and unparks at
// control-period boundaries before posting new work).
func (c *Chain) Unpark() {
	if !c.parked {
		return
	}
	c.parked = false
	if c.n == 0 {
		return
	}
	e := c.eng
	h := &c.ring[c.head]
	if h.at < e.now {
		panic(fmt.Sprintf("sim: unpark with head event at %v before now %v", h.at, e.now))
	}
	c.rep.at, c.rep.seq = h.at, h.seq
	e.chainExtra--
	e.armRep(c.rep)
}

// grow doubles the ring, unwrapping it to the front.
func (c *Chain) grow() {
	old := c.ring
	next := make([]chainEv, len(old)*2)
	m := len(old) - 1
	for i := 0; i < c.n; i++ {
		next[i] = old[(c.head+i)&m]
	}
	c.ring = next
	c.head = 0
}
