package sim

import (
	"container/heap"
	"testing"
	"time"
)

// The engine's inlined 4-ary heap (plus the chain ring buffers and the
// timing wheel in front of it) must fire events in exactly the order a
// textbook priority queue over (time, seq) would. FuzzHeapDifferential
// drives both from the same random script of schedule / post / chain-post
// / stop / reschedule / step operations and requires identical fire
// sequences, including FIFO order among co-timed events.

type refEv struct {
	at  time.Duration
	seq uint64
	id  int
}

type refHeap []refEv

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)   { *h = append(*h, x.(refEv)) }
func (h *refHeap) Pop() any {
	old := *h
	n := len(old) - 1
	ev := old[n]
	*h = old[:n]
	return ev
}

func (h *refHeap) removeID(id int) bool {
	for i, ev := range *h {
		if ev.id == id {
			heap.Remove(h, i)
			return true
		}
	}
	return false
}

func FuzzHeapDifferential(f *testing.F) {
	f.Add([]byte{0, 1, 1, 2, 2, 0, 5, 0, 5, 0, 5, 0})
	f.Add([]byte{2, 3, 2, 3, 2, 3, 5, 0, 3, 0, 5, 0, 4, 1, 7})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 1, 0, 2, 0, 5, 0, 6, 200, 6, 10, 5, 0})
	f.Add([]byte{0, 9, 4, 0, 20, 3, 0, 4, 0, 9, 5, 0, 5, 0, 5, 0})

	f.Fuzz(func(t *testing.T, script []byte) {
		e := NewEngine()
		chains := [2]*Chain{e.NewChain(), e.NewChain()}

		var ref refHeap
		var refSeq uint64
		nextID := 0

		var engFired, refFired []int

		// Owned timers created so far; ownedEv[k] is the id of timer k's
		// currently pending firing, -1 when none. The engine callback
		// reads the id at fire time, so a Reschedule changes which id the
		// next firing reports — on both sides.
		var owned []*Timer
		var ownedEv []int

		push := func(at time.Duration, id int) {
			heap.Push(&ref, refEv{at, refSeq, id})
			refSeq++
		}

		for i := 0; i+1 < len(script) && nextID < 512; i += 2 {
			op, arg := script[i]%7, script[i+1]
			delta := time.Duration(arg) * 64 * time.Nanosecond
			at := e.Now() + delta
			switch op {
			case 0: // schedule an owned timer
				id := nextID
				nextID++
				k := len(owned)
				owned = append(owned, nil)
				ownedEv = append(ownedEv, id)
				owned[k] = e.Schedule(at, func() {
					engFired = append(engFired, ownedEv[k])
					ownedEv[k] = -1
				})
				push(at, id)
			case 1: // fire-and-forget post
				id := nextID
				nextID++
				e.Post(at, func() { engFired = append(engFired, id) })
				push(at, id)
			case 2: // chain post (loose: tolerates non-monotone times)
				id := nextID
				nextID++
				chains[int(arg)%2].PostLoose(at, func() { engFired = append(engFired, id) })
				push(at, id)
			case 3: // stop an owned timer
				if len(owned) == 0 {
					continue
				}
				k := int(arg) % len(owned)
				got := owned[k].Stop()
				want := ownedEv[k] >= 0
				if got != want {
					t.Fatalf("op %d: Stop(timer %d) = %v, reference pending = %v", i, k, got, want)
				}
				if want {
					ref.removeID(ownedEv[k])
					ownedEv[k] = -1
				}
			case 4: // reschedule an owned timer (pending, stopped, or fired)
				if len(owned) == 0 {
					continue
				}
				k := int(arg) % len(owned)
				id := nextID
				nextID++
				if ownedEv[k] >= 0 {
					ref.removeID(ownedEv[k])
				}
				ownedEv[k] = id
				owned[k].Reschedule(at)
				push(at, id)
			case 5: // dispatch one event
				engOK := e.Step()
				if refOK := ref.Len() > 0; engOK != refOK {
					t.Fatalf("op %d: Step() = %v but reference has %d pending", i, engOK, ref.Len())
				}
				if engOK {
					refFired = append(refFired, heap.Pop(&ref).(refEv).id)
				}
			case 6: // far post, exercising wheel parking and overflow
				id := nextID
				nextID++
				farAt := e.Now() + time.Duration(arg+1)*time.Millisecond
				chains[int(arg)%2].PostLoose(farAt, func() { engFired = append(engFired, id) })
				push(farAt, id)
			}
			if e.Pending() != ref.Len() {
				t.Fatalf("op %d: Pending() = %d, reference = %d", i, e.Pending(), ref.Len())
			}
		}

		e.Run()
		for ref.Len() > 0 {
			refFired = append(refFired, heap.Pop(&ref).(refEv).id)
		}

		if len(engFired) != len(refFired) {
			t.Fatalf("engine fired %d events, reference %d", len(engFired), len(refFired))
		}
		for i := range engFired {
			if engFired[i] != refFired[i] {
				t.Fatalf("fire order diverges at %d: engine %v, reference %v",
					i, engFired[i:min(i+8, len(engFired))], refFired[i:min(i+8, len(refFired))])
			}
		}
	})
}
