package sim

import (
	"container/heap"
	"testing"
	"time"
)

// The engine's inlined 4-ary heap (plus the chain ring buffers and the
// timing wheel in front of it) must fire events in exactly the order a
// textbook priority queue over (time, seq) would. FuzzHeapDifferential
// drives both from the same random script of schedule / post / chain-post
// / stop / reschedule / step / park-unpark operations and requires
// identical fire sequences, including FIFO order among co-timed events.
// Far posts step in eighths of the wheel span so the fuzzer reaches the
// exact wheel/overflow boundary (at == wBase+wheelSpan), which must park
// on the wheel, not the overflow list.

type refEv struct {
	at  time.Duration
	seq uint64
	id  int
}

type refHeap []refEv

func (h refHeap) Len() int { return len(h) }
func (h refHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h refHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *refHeap) Push(x any)   { *h = append(*h, x.(refEv)) }
func (h *refHeap) Pop() any {
	old := *h
	n := len(old) - 1
	ev := old[n]
	*h = old[:n]
	return ev
}

func (h *refHeap) removeID(id int) bool {
	for i, ev := range *h {
		if ev.id == id {
			heap.Remove(h, i)
			return true
		}
	}
	return false
}

func FuzzHeapDifferential(f *testing.F) {
	f.Add([]byte{0, 1, 1, 2, 2, 0, 5, 0, 5, 0, 5, 0})
	f.Add([]byte{2, 3, 2, 3, 2, 3, 5, 0, 3, 0, 5, 0, 4, 1, 7})
	f.Add([]byte{0, 0, 0, 0, 0, 0, 1, 0, 2, 0, 5, 0, 6, 200, 6, 10, 5, 0})
	f.Add([]byte{0, 9, 4, 0, 20, 3, 0, 4, 0, 9, 5, 0, 5, 0, 5, 0})
	// Exact wheel-span boundary: a far post at precisely wBase+wheelSpan
	// (arg 7 = 8 eighths of the span, with the wheel already occupied so
	// the window jump cannot move wBase) must file on the wheel.
	f.Add([]byte{6, 0, 6, 7, 5, 0, 5, 0, 5, 0})
	f.Add([]byte{6, 7, 7, 0, 7, 0, 5, 0, 6, 7, 5, 0, 5, 0})
	// Park/unpark interleaved with near-heap traffic.
	f.Add([]byte{2, 0, 7, 0, 1, 10, 5, 0, 7, 0, 5, 0, 5, 0})

	f.Fuzz(func(t *testing.T, script []byte) {
		e := NewEngine()
		chains := [2]*Chain{e.NewChain(), e.NewChain()}

		var ref refHeap
		var refSeq uint64
		nextID := 0

		// Reference model of the chains, for park/unpark: the FIFO of
		// unfired chain-routed events per chain (mirroring each ring),
		// whether the chain is parked, and the chain's last posted time
		// (mirroring PostLoose's routing decision). While a chain is
		// parked its events live only in chainQ, not in ref.
		var chainQ [2][]refEv
		var parked [2]bool
		var chainLast [2]time.Duration

		var engFired, refFired []int

		// Owned timers created so far; ownedEv[k] is the id of timer k's
		// currently pending firing, -1 when none. The engine callback
		// reads the id at fire time, so a Reschedule changes which id the
		// next firing reports — on both sides.
		var owned []*Timer
		var ownedEv []int

		push := func(at time.Duration, id int) {
			heap.Push(&ref, refEv{at, refSeq, id})
			refSeq++
		}

		// chainPost mirrors Chain.PostLoose: events that preserve the
		// chain's time order ride the ring (and are withheld from ref
		// while the chain is parked); others fall back to a plain post.
		chainPost := func(k int, at time.Duration) {
			id := nextID
			nextID++
			if at >= chainLast[k] {
				chainLast[k] = at
				ev := refEv{at, refSeq, id}
				refSeq++
				chainQ[k] = append(chainQ[k], ev)
				if !parked[k] {
					heap.Push(&ref, ev)
				}
				chains[k].PostLoose(at, func() {
					engFired = append(engFired, id)
					chainQ[k] = chainQ[k][1:]
				})
			} else {
				chains[k].PostLoose(at, func() { engFired = append(engFired, id) })
				push(at, id)
			}
		}

		for i := 0; i+1 < len(script) && nextID < 512; i += 2 {
			op, arg := script[i]%8, script[i+1]
			delta := time.Duration(arg) * 64 * time.Nanosecond
			at := e.Now() + delta
			switch op {
			case 0: // schedule an owned timer
				id := nextID
				nextID++
				k := len(owned)
				owned = append(owned, nil)
				ownedEv = append(ownedEv, id)
				owned[k] = e.Schedule(at, func() {
					engFired = append(engFired, ownedEv[k])
					ownedEv[k] = -1
				})
				push(at, id)
			case 1: // fire-and-forget post
				id := nextID
				nextID++
				e.Post(at, func() { engFired = append(engFired, id) })
				push(at, id)
			case 2: // chain post (loose: tolerates non-monotone times)
				chainPost(int(arg)%2, at)
			case 3: // stop an owned timer
				if len(owned) == 0 {
					continue
				}
				k := int(arg) % len(owned)
				got := owned[k].Stop()
				want := ownedEv[k] >= 0
				if got != want {
					t.Fatalf("op %d: Stop(timer %d) = %v, reference pending = %v", i, k, got, want)
				}
				if want {
					ref.removeID(ownedEv[k])
					ownedEv[k] = -1
				}
			case 4: // reschedule an owned timer (pending, stopped, or fired)
				if len(owned) == 0 {
					continue
				}
				k := int(arg) % len(owned)
				id := nextID
				nextID++
				if ownedEv[k] >= 0 {
					ref.removeID(ownedEv[k])
				}
				ownedEv[k] = id
				owned[k].Reschedule(at)
				push(at, id)
			case 5: // dispatch one event
				engOK := e.Step()
				if refOK := ref.Len() > 0; engOK != refOK {
					t.Fatalf("op %d: Step() = %v but reference has %d pending", i, engOK, ref.Len())
				}
				if engOK {
					refFired = append(refFired, heap.Pop(&ref).(refEv).id)
				}
			case 6: // far post in span-eighths: wheel parking, exact span boundary, overflow
				farAt := e.Now() + time.Duration(int(arg)%32+1)*(wheelSpan/8)
				chainPost(int(arg)%2, farAt)
			case 7: // park / unpark a chain
				k := int(arg) % 2
				if !parked[k] {
					parked[k] = true
					chains[k].Park()
					for _, ev := range chainQ[k] {
						ref.removeID(ev.id)
					}
				} else if len(chainQ[k]) == 0 || chainQ[k][0].at >= e.Now() {
					parked[k] = false
					chains[k].Unpark()
					for _, ev := range chainQ[k] {
						heap.Push(&ref, ev)
					}
				} // else: time passed the parked head; unparking would panic, skip
			}
			withheld := 0
			for k := range chains {
				if parked[k] {
					withheld += len(chainQ[k])
				}
			}
			if e.Pending() != ref.Len()+withheld {
				t.Fatalf("op %d: Pending() = %d, reference = %d + %d withheld", i, e.Pending(), ref.Len(), withheld)
			}
		}

		// Unpark whatever can still legally fire; chains whose parked head
		// is already in the past stay parked on both sides.
		for k := range chains {
			if parked[k] && (len(chainQ[k]) == 0 || chainQ[k][0].at >= e.Now()) {
				parked[k] = false
				chains[k].Unpark()
				for _, ev := range chainQ[k] {
					heap.Push(&ref, ev)
				}
			}
		}
		e.Run()
		for ref.Len() > 0 {
			refFired = append(refFired, heap.Pop(&ref).(refEv).id)
		}

		if len(engFired) != len(refFired) {
			t.Fatalf("engine fired %d events, reference %d", len(engFired), len(refFired))
		}
		for i := range engFired {
			if engFired[i] != refFired[i] {
				t.Fatalf("fire order diverges at %d: engine %v, reference %v",
					i, engFired[i:min(i+8, len(engFired))], refFired[i:min(i+8, len(refFired))])
			}
		}
	})
}
