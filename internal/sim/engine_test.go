package sim

import (
	"testing"
	"testing/quick"
	"time"
)

func TestEngineFiresInTimeOrder(t *testing.T) {
	e := NewEngine()
	var got []time.Duration
	for _, d := range []time.Duration{30, 10, 20, 10, 5} {
		d := d
		e.After(d, func() { got = append(got, d) })
	}
	e.Run()
	want := []time.Duration{5, 10, 10, 20, 30}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("event %d fired at %v, want %v", i, got[i], want[i])
		}
	}
}

func TestEngineSameInstantFIFO(t *testing.T) {
	e := NewEngine()
	var got []int
	for i := 0; i < 8; i++ {
		i := i
		e.Schedule(100, func() { got = append(got, i) })
	}
	e.Run()
	for i, v := range got {
		if v != i {
			t.Fatalf("same-instant events reordered: got %v", got)
		}
	}
}

func TestEngineClockAdvances(t *testing.T) {
	e := NewEngine()
	e.After(7*time.Millisecond, func() {
		if e.Now() != 7*time.Millisecond {
			t.Errorf("Now() = %v inside event, want 7ms", e.Now())
		}
	})
	e.Run()
	if e.Now() != 7*time.Millisecond {
		t.Errorf("Now() = %v after run, want 7ms", e.Now())
	}
}

func TestEngineRunUntil(t *testing.T) {
	e := NewEngine()
	fired := 0
	e.After(1*time.Second, func() { fired++ })
	e.After(3*time.Second, func() { fired++ })
	e.RunUntil(2 * time.Second)
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if e.Now() != 2*time.Second {
		t.Fatalf("Now() = %v, want 2s", e.Now())
	}
	if e.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", e.Pending())
	}
	e.RunUntil(5 * time.Second)
	if fired != 2 {
		t.Fatalf("fired = %d after second run, want 2", fired)
	}
}

func TestEngineRunUntilFiresEventAtDeadline(t *testing.T) {
	e := NewEngine()
	fired := false
	e.After(2*time.Second, func() { fired = true })
	e.RunUntil(2 * time.Second)
	if !fired {
		t.Fatal("event exactly at deadline did not fire")
	}
}

func TestTimerStop(t *testing.T) {
	e := NewEngine()
	fired := false
	tm := e.After(time.Second, func() { fired = true })
	if !tm.Stop() {
		t.Fatal("Stop on pending timer returned false")
	}
	if tm.Stop() {
		t.Fatal("second Stop returned true")
	}
	e.Run()
	if fired {
		t.Fatal("stopped timer fired")
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
}

func TestTimerStopAfterFire(t *testing.T) {
	e := NewEngine()
	tm := e.After(time.Second, func() {})
	e.Run()
	if tm.Stop() {
		t.Fatal("Stop on fired timer returned true")
	}
}

func TestSchedulePastPanics(t *testing.T) {
	e := NewEngine()
	e.After(time.Second, func() {})
	e.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	e.Schedule(time.Millisecond, func() {})
}

func TestScheduleNilPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling nil func did not panic")
		}
	}()
	e.Schedule(0, nil)
}

func TestNegativeAfterPanics(t *testing.T) {
	e := NewEngine()
	defer func() {
		if recover() == nil {
			t.Fatal("negative After did not panic")
		}
	}()
	e.After(-time.Second, func() {})
}

func TestEngineNestedScheduling(t *testing.T) {
	e := NewEngine()
	var order []string
	e.After(time.Millisecond, func() {
		order = append(order, "a")
		e.After(time.Millisecond, func() { order = append(order, "c") })
	})
	e.After(1500*time.Microsecond, func() { order = append(order, "b") })
	e.Run()
	want := "a b c"
	got := order[0] + " " + order[1] + " " + order[2]
	if got != want {
		t.Fatalf("order = %q, want %q", got, want)
	}
}

// Property: for any set of delays, events fire in nondecreasing time order
// and the clock never runs backward.
func TestEngineOrderingProperty(t *testing.T) {
	f := func(delays []uint16) bool {
		e := NewEngine()
		var fired []time.Duration
		for _, d := range delays {
			d := time.Duration(d) * time.Microsecond
			e.After(d, func() { fired = append(fired, e.Now()) })
		}
		e.Run()
		if len(fired) != len(delays) {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42).Stream("noise")
	b := NewRNG(42).Stream("noise")
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same (seed, stream) diverged")
		}
	}
}

func TestRNGStreamIndependence(t *testing.T) {
	root := NewRNG(42)
	a := root.Stream("a")
	b := root.Stream("b")
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams a and b agree on %d/64 draws; not independent", same)
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("seeds 1 and 2 agree on %d/64 draws", same)
	}
}

func TestGaussianMoments(t *testing.T) {
	g := NewRNG(7).Stream("gauss")
	const n = 200000
	var sum, sq float64
	for i := 0; i < n; i++ {
		v := g.Gaussian(5, 2)
		sum += v
		sq += v * v
	}
	mean := sum / n
	variance := sq/n - mean*mean
	if mean < 4.95 || mean > 5.05 {
		t.Errorf("mean = %.4f, want ≈ 5", mean)
	}
	if variance < 3.8 || variance > 4.2 {
		t.Errorf("variance = %.4f, want ≈ 4", variance)
	}
}

func TestExponentialMean(t *testing.T) {
	g := NewRNG(7).Stream("exp")
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		v := g.Exponential(3)
		if v < 0 {
			t.Fatalf("negative exponential draw %v", v)
		}
		sum += v
	}
	mean := sum / n
	if mean < 2.9 || mean > 3.1 {
		t.Errorf("mean = %.4f, want ≈ 3", mean)
	}
}

func TestFloat64Range(t *testing.T) {
	f := func(seed uint64) bool {
		g := NewRNG(seed)
		for i := 0; i < 50; i++ {
			v := g.Float64()
			if v < 0 || v >= 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
