// Package sim provides the discrete-event simulation kernel that drives
// every experiment in wattio: a virtual nanosecond clock, an event queue,
// and deterministic random number streams.
//
// Nothing in the simulator reads wall-clock time. A sixty-second power
// measurement runs in milliseconds of host time and is bit-for-bit
// reproducible given the same seed.
//
// The event queue is the hottest loop in the repository (the fleet
// experiment pushes ~10^8 events through it), so the kernel is built to
// run allocation-free at steady state:
//
//   - the priority queue is an inlined 4-ary min-heap specialized to
//     *Timer — no interface boxing, no container/heap dispatch, and a
//     quarter of the sift depth of a binary heap;
//   - fire-and-forget events (Post/PostAfter) draw their Timer from a
//     per-engine free list and return it after firing;
//   - recurring work re-arms a single Timer in place (Reschedule,
//     Periodic) instead of allocating a fresh timer and closure per tick;
//   - stopped timers are removed from the heap eagerly via their tracked
//     heap index, so the queue never accumulates garbage and Pending is
//     O(1).
package sim

import (
	"fmt"
	"time"

	"wattio/internal/telemetry"
)

// heapGaugeMask amortizes the heap-depth telemetry gauge: the gauge is
// refreshed once every heapGaugeMask+1 dispatches rather than on every
// schedule and pop. The gauge is a monitoring aid, not an input to any
// simulation result, so sampling it is free accuracy-wise; writing it
// per event showed up in kernel profiles.
const heapGaugeMask = 1023

// Engine is a discrete-event scheduler over virtual time.
//
// Events scheduled for the same instant fire in scheduling order (FIFO),
// which keeps co-timed device and sampler events deterministic.
// Engine is not safe for concurrent use; the simulation is single-threaded
// by design so that results are reproducible.
type Engine struct {
	now time.Duration
	pq  []heapEntry // 4-ary min-heap ordered by (at, seq), times inline
	seq uint64

	free *Timer // free list of pooled (Post) timers

	// chainExtra counts events queued on Chains but not represented in
	// the heap or on the wheel: every event beyond a chain's head, plus
	// the head itself while the chain is parked. Pending sums it in.
	chainExtra int

	// Timing wheel holding chain representatives whose head event lies
	// beyond the near window [wBase, wBase+wheelWidth). Parked reps cost
	// O(1) to file and O(1) amortized to surface, versus a full-depth
	// heap sift per re-key; the heap ("near heap") stays a few dozen
	// entries deep even with thousands of concurrently busy resources.
	// Invariant: every parked rep has at >= wBase+wheelWidth, so the
	// near heap always holds the global minimum once ensureNear returns.
	// Only chain reps park — they never Stop or Reschedule, so the wheel
	// needs no removal path. The bucket array is allocated on first use.
	wBase       time.Duration
	wheel       []*Timer // bucket lists linked through Timer.next
	wheelCnt    int
	overflow    *Timer // reps beyond the wheel span; re-filed once per revolution
	overflowCnt int

	// deadline is the active RunUntil bound (-1 outside RunUntil). It is
	// exposed through Deadline so batching samplers (measure.Rig) know
	// how far they may synthesize ticks without overrunning the run.
	deadline time.Duration

	dispatched uint64

	// Telemetry taps. All are nil-safe no-ops when telemetry is off,
	// so the hot path pays one predicted branch per call.
	metrics  *telemetry.Registry
	tracer   *telemetry.Tracer
	cEvents  *telemetry.Counter
	cStopped *telemetry.Counter
	gHeap    *telemetry.Gauge
}

// NewEngine returns an Engine with the clock at zero and no pending
// events, tapped into the process-default telemetry (telemetry.Default)
// if one is installed.
func NewEngine() *Engine {
	e := &Engine{deadline: -1}
	e.EnableTelemetry(telemetry.Default(), telemetry.DefaultTracer())
	return e
}

// EnableTelemetry attaches a metrics registry and a tracer to the
// engine (either may be nil). Devices and workloads read these at
// construction time via Metrics and Tracer, so call it before building
// the testbed on the engine.
func (e *Engine) EnableTelemetry(reg *telemetry.Registry, tr *telemetry.Tracer) {
	e.metrics = reg
	e.tracer = tr
	e.cEvents = reg.Counter("sim_events_dispatched_total")
	e.cStopped = reg.Counter("sim_events_stopped_total")
	e.gHeap = reg.Gauge("sim_heap_depth")
}

// Metrics returns the engine's metrics registry; nil when telemetry is
// disabled (handles from a nil registry are no-ops, so callers may use
// the result unconditionally).
func (e *Engine) Metrics() *telemetry.Registry { return e.metrics }

// Tracer returns the engine's event tracer; nil when tracing is
// disabled (a nil tracer discards events, so callers may use the
// result unconditionally).
func (e *Engine) Tracer() *telemetry.Tracer { return e.tracer }

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Timer is a handle to a scheduled event. A Timer may be stopped before
// it fires, and re-armed afterwards (or while pending) with Reschedule;
// stopping an already-fired or already-stopped timer is a no-op.
type Timer struct {
	at     time.Duration
	seq    uint64
	fn     func()
	eng    *Engine
	next   *Timer        // free-list link (pooled timers only)
	index  int           // heap index, -1 when not queued
	period time.Duration // >0: auto re-arm after firing (Periodic)
	chain  *Chain        // chain this timer represents, nil for plain timers

	pooled  bool // owned by the engine free list; no external handle exists
	stopped bool
	firing  bool // its callback is executing right now
}

// At returns the virtual time the timer is (or was) scheduled to fire.
func (t *Timer) At() time.Duration { return t.at }

// Pending reports whether the timer is queued to fire.
func (t *Timer) Pending() bool { return t.index >= 0 }

// Stop cancels the timer, removing it from the event queue immediately.
// It reports whether the timer was still pending. Calling Stop from
// inside the timer's own callback cancels a Periodic re-arm.
func (t *Timer) Stop() bool {
	if t.index < 0 {
		if t.firing && !t.stopped {
			// Stopped from inside its own callback: nothing is queued,
			// but mark it so a Periodic timer does not re-arm.
			t.stopped = true
			return true
		}
		return false
	}
	if t.stopped {
		return false
	}
	t.stopped = true
	e := t.eng
	e.heapRemove(t.index)
	e.cStopped.Inc()
	if t.pooled {
		t.recycle()
	}
	return true
}

// Reschedule re-arms the timer to fire its function at absolute virtual
// time at, whether the timer is pending (it is moved in place), stopped,
// or has already fired. The re-armed firing takes a fresh scheduling
// sequence number, exactly as scheduling a new timer at this point
// would, so converting an allocate-per-tick loop to Reschedule preserves
// event order bit-for-bit. Like Schedule it panics on times in the past.
func (t *Timer) Reschedule(at time.Duration) {
	e := t.eng
	if at < e.now {
		panic(fmt.Sprintf("sim: reschedule at %v before now %v", at, e.now))
	}
	if t.pooled {
		panic("sim: reschedule of a pooled (Post) timer")
	}
	if t.fn == nil {
		panic("sim: reschedule of an unarmed timer")
	}
	t.stopped = false
	t.at = at
	t.seq = e.seq
	e.seq++
	if t.index >= 0 {
		e.heapFix(t.index)
	} else {
		e.heapPush(t)
	}
}

// RescheduleAfter re-arms the timer to fire when d has elapsed from the
// current virtual time.
func (t *Timer) RescheduleAfter(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	t.Reschedule(t.eng.now + d)
}

// recycle returns a pooled timer to the engine free list, dropping its
// closure so a recycled Timer can never fire (or retain) a stale one.
func (t *Timer) recycle() {
	t.fn = nil
	t.period = 0
	t.next = t.eng.free
	t.eng.free = t
}

// Schedule runs fn at absolute virtual time at and returns a handle the
// caller owns: it may be stopped and re-armed with Reschedule, and is
// never recycled by the engine. Scheduling in the past (before Now)
// panics: it would silently reorder causality.
func (e *Engine) Schedule(at time.Duration, fn func()) *Timer {
	e.checkSchedule(at, fn)
	t := &Timer{at: at, seq: e.seq, fn: fn, eng: e, index: -1}
	e.seq++
	e.heapPush(t)
	return t
}

// After runs fn when d has elapsed from the current virtual time.
func (e *Engine) After(d time.Duration, fn func()) *Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.Schedule(e.now+d, fn)
}

// Post runs fn at absolute virtual time at, fire-and-forget: no handle
// is returned, and the timer backing the event is drawn from (and
// returned to) the engine's free list, so a steady-state event stream
// allocates nothing. Use it for the one-shot completion events device
// models emit per IO; use Schedule when the caller needs to Stop or
// Reschedule the event.
func (e *Engine) Post(at time.Duration, fn func()) {
	e.checkSchedule(at, fn)
	t := e.free
	if t != nil {
		e.free = t.next
		t.next = nil
		t.stopped = false
	} else {
		t = &Timer{eng: e, pooled: true, index: -1}
	}
	t.at = at
	t.seq = e.seq
	t.fn = fn
	e.seq++
	e.heapPush(t)
}

// PostAfter runs fn when d has elapsed, fire-and-forget (see Post).
func (e *Engine) PostAfter(d time.Duration, fn func()) {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	e.Post(e.now+d, fn)
}

// Periodic runs fn every `every` of virtual time, first at now+every.
// After each firing the same Timer re-arms itself in place — no
// allocation per tick. The callback may Stop the timer (ending the
// series) or Reschedule it (overriding the next firing time, after
// which the period cadence resumes from the new time).
func (e *Engine) Periodic(every time.Duration, fn func()) *Timer {
	if every <= 0 {
		panic(fmt.Sprintf("sim: non-positive period %v", every))
	}
	at := e.now + every
	e.checkSchedule(at, fn)
	t := &Timer{at: at, seq: e.seq, fn: fn, eng: e, index: -1, period: every}
	e.seq++
	e.heapPush(t)
	return t
}

func (e *Engine) checkSchedule(at time.Duration, fn func()) {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	if fn == nil {
		panic("sim: schedule with nil func")
	}
}

// --- timing wheel for far chain representatives --------------------------

const (
	wheelShift   = 9 // bucket width 2^9 ns ≈ 0.5µs
	wheelWidth   = time.Duration(1) << wheelShift
	wheelBuckets = 1 << 17
	wheelMask    = wheelBuckets - 1
	wheelSpan    = wheelWidth * wheelBuckets // ≈ 67 ms
)

// armRep files a chain representative: into the near heap when its head
// fires inside the current window, onto the wheel otherwise.
func (e *Engine) armRep(t *Timer) {
	if t.at < e.wBase+wheelWidth {
		e.heapPush(t)
	} else {
		e.park(t)
	}
}

// park files a far representative in its wheel bucket (or the overflow
// list when it lies beyond the wheel span). Caller guarantees
// t.at >= wBase+wheelWidth.
//
// Boundary semantics, pinned: the wheel covers (wBase+wheelWidth-1) up
// to and including wBase+wheelSpan — a rep exactly one full revolution
// out files into the just-surfaced current bucket and comes around
// precisely at its due time. Only reps strictly beyond the span go to
// the overflow list. The re-file path in wheelAdvance uses the same
// inclusive comparison, so a rep at the exact span boundary never
// round-trips through overflow.
func (e *Engine) park(t *Timer) {
	if e.wheel == nil {
		e.wheel = make([]*Timer, wheelBuckets)
	}
	if e.wheelCnt == 0 && e.overflowCnt == 0 {
		// Wheel empty: jump the window forward so a sparse schedule does
		// not force events through the overflow list. Near-heap entries
		// are unaffected — the near/far split applies only at arm time.
		if b := t.at>>wheelShift<<wheelShift - wheelWidth; b > e.wBase {
			e.wBase = b
		}
	}
	if t.at-e.wBase > wheelSpan {
		t.next = e.overflow
		e.overflow = t
		e.overflowCnt++
		return
	}
	j := int(t.at>>wheelShift) & wheelMask
	t.next = e.wheel[j]
	e.wheel[j] = t
	e.wheelCnt++
}

// wheelRemove unlinks a parked representative from its wheel bucket or
// the overflow list. It is the removal path Chain.Park needs: parked
// reps never Stop or Reschedule, so nothing else removes them. The
// bucket is recomputed from the rep's time; a rep whose bucket has come
// due since it was filed would have been surfaced into the heap, so the
// computed bucket (falling back to the overflow list, which re-files
// lazily) always finds it.
func (e *Engine) wheelRemove(t *Timer) {
	if e.wheel != nil && t.at-e.wBase <= wheelSpan {
		j := int(t.at>>wheelShift) & wheelMask
		if listRemove(&e.wheel[j], t) {
			e.wheelCnt--
			return
		}
	}
	if listRemove(&e.overflow, t) {
		e.overflowCnt--
		return
	}
	panic("sim: parked chain representative not found on wheel or overflow")
}

// listRemove unlinks t from a singly-linked Timer list, reporting
// whether it was found.
func listRemove(head **Timer, t *Timer) bool {
	for p := head; *p != nil; p = &(*p).next {
		if *p == t {
			*p = t.next
			t.next = nil
			return true
		}
	}
	return false
}

// wheelAdvance moves the near window forward one bucket, surfacing the
// reps whose time has come into the near heap. Once per revolution the
// overflow list is re-filed.
func (e *Engine) wheelAdvance() {
	e.wBase += wheelWidth
	j := int(e.wBase>>wheelShift) & wheelMask
	for t := e.wheel[j]; t != nil; {
		next := t.next
		t.next = nil
		e.wheelCnt--
		if t.at < e.wBase+wheelWidth {
			e.heapPush(t)
		} else {
			// Span-aliased: a full revolution (or more) out.
			t.next = e.overflow
			e.overflow = t
			e.overflowCnt++
		}
		t = next
	}
	e.wheel[j] = nil
	if j == 0 && e.overflowCnt > 0 {
		var keep *Timer
		keepN := 0
		for t := e.overflow; t != nil; {
			next := t.next
			t.next = nil
			switch {
			case t.at < e.wBase+wheelWidth:
				e.heapPush(t)
			case t.at-e.wBase <= wheelSpan:
				// Inclusive at the span boundary, matching park: a rep
				// exactly one revolution out belongs on the wheel.
				jj := int(t.at>>wheelShift) & wheelMask
				t.next = e.wheel[jj]
				e.wheel[jj] = t
				e.wheelCnt++
			default:
				t.next = keep
				keep = t
				keepN++
			}
			t = next
		}
		e.overflow, e.overflowCnt = keep, keepN
	}
}

// ensureNear advances the wheel until the near heap provably holds the
// earliest pending event: either its root fires inside the current
// window (parked reps are all later) or nothing is parked at all. Every
// peek and pop goes through here; in the steady state it is one load
// and one compare.
func (e *Engine) ensureNear() {
	for e.wheelCnt > 0 || e.overflowCnt > 0 {
		if len(e.pq) > 0 && e.pq[0].at < e.wBase+wheelWidth {
			return
		}
		e.wheelAdvance()
	}
}

// Step fires the next pending event, advancing the clock to its time.
// It reports whether an event fired (false when the queue is drained).
func (e *Engine) Step() bool {
	e.ensureNear()
	if len(e.pq) == 0 {
		return false
	}
	if c := e.pq[0].t.chain; c != nil {
		e.fireChain(c)
		return true
	}
	t := e.heapPop()
	// The virtual clock is monotone by construction (Schedule rejects
	// the past, the heap orders by time); this check turns any future
	// violation of that invariant into a loud failure rather than a
	// silently corrupted energy integral.
	if t.at < e.now {
		panic(fmt.Sprintf("sim: clock would go backward: event at %v, now %v", t.at, e.now))
	}
	e.now = t.at
	e.cEvents.Inc()
	e.dispatched++
	if e.dispatched&heapGaugeMask == 0 {
		e.gHeap.Set(int64(len(e.pq)))
	}
	if t.pooled {
		// Recycle before firing: the callback may Post again and reuse
		// this very timer. Its closure is extracted first and cleared by
		// recycle, so a recycled Timer cannot alias a stale callback.
		fn := t.fn
		t.recycle()
		fn()
		return true
	}
	t.firing = true
	t.fn()
	t.firing = false
	if t.period > 0 && !t.stopped && t.index < 0 {
		// Periodic: re-arm in place unless the callback stopped or
		// explicitly rescheduled the timer.
		t.at += t.period
		t.seq = e.seq
		e.seq++
		e.heapPush(t)
	}
	return true
}

// fireChain dispatches the head event of a chain whose representative
// sits at the heap root. When the chain has a successor the root is
// re-keyed in place and sifted down — the successor is usually among
// the earliest pending events, so the sift ends after a level or two,
// versus a full-depth pop plus push. The head runs after the re-key so
// it may post to its own chain.
func (e *Engine) fireChain(c *Chain) {
	rep := c.rep
	if rep.at < e.now {
		panic(fmt.Sprintf("sim: clock would go backward: event at %v, now %v", rep.at, e.now))
	}
	e.now = rep.at
	e.cEvents.Inc()
	e.dispatched++
	if e.dispatched&heapGaugeMask == 0 {
		e.gHeap.Set(int64(len(e.pq)))
	}
	mask := len(c.ring) - 1
	ev := c.ring[c.head]
	c.ring[c.head].fn = nil
	c.head = (c.head + 1) & mask
	c.n--
	if c.n > 0 {
		h := &c.ring[c.head]
		rep.at, rep.seq = h.at, h.seq
		if h.at < e.wBase+wheelWidth {
			e.pq[0].at = h.at
			e.siftDown(0)
		} else {
			e.heapPop()
			e.park(rep)
		}
		e.chainExtra--
	} else {
		e.heapPop()
	}
	ev.fn()
}

// Run fires events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil fires events with time ≤ deadline, then advances the clock to
// the deadline. Events scheduled beyond the deadline remain pending.
func (e *Engine) RunUntil(deadline time.Duration) {
	prev := e.deadline
	e.deadline = deadline
	for {
		e.ensureNear()
		if len(e.pq) == 0 || e.pq[0].at > deadline {
			break
		}
		e.Step()
	}
	e.deadline = prev
	if e.now < deadline {
		e.now = deadline
	}
}

// Deadline returns the bound of the innermost RunUntil currently
// executing, and whether there is one. Batching samplers use it to
// know how far they may synthesize ticks without overrunning the run.
func (e *Engine) Deadline() (time.Duration, bool) {
	return e.deadline, e.deadline >= 0
}

// AdvanceTo moves the virtual clock forward to t without dispatching
// anything. It panics if an event is pending at or before t: skipping
// it would reorder causality. This is the batching samplers' fast path —
// a sampler that knows no event fires inside its next window advances
// the clock and samples inline instead of round-tripping the event
// queue, and because the clock really advances, every lazily-integrated
// quantity (meter energy, RNG-free state) accumulates exactly as if the
// tick had been dispatched.
func (e *Engine) AdvanceTo(t time.Duration) {
	if t < e.now {
		panic(fmt.Sprintf("sim: advance to %v before now %v", t, e.now))
	}
	for t >= e.wBase+wheelWidth && (e.wheelCnt > 0 || e.overflowCnt > 0) {
		e.wheelAdvance()
	}
	if len(e.pq) > 0 && e.pq[0].at <= t {
		panic(fmt.Sprintf("sim: advance to %v past pending event at %v", t, e.pq[0].at))
	}
	e.now = t
}

// NextEventAt returns the virtual time of the earliest pending event,
// and whether one exists. Stopped timers are removed eagerly, so the
// answer never reflects cancelled work.
func (e *Engine) NextEventAt() (time.Duration, bool) {
	e.ensureNear()
	if len(e.pq) == 0 {
		return 0, false
	}
	return e.pq[0].at, true
}

// Pending returns the number of events still queued (including events at
// the current instant, events buffered on Chains, and events held by
// parked chains). Stopped timers leave the queue immediately, so this is
// a live count, O(1).
func (e *Engine) Pending() int {
	return len(e.pq) + e.chainExtra + e.wheelCnt + e.overflowCnt
}

// Dispatched returns the number of events the engine has fired since
// construction. It is a deterministic measure of simulation work (wall
// clock is not), which the mesoscale experiments use to report how many
// events aggregation removed from a run.
func (e *Engine) Dispatched() uint64 { return e.dispatched }

// --- 4-ary min-heap over (at, seq) ---------------------------------------
//
// A 4-ary layout halves tree depth versus binary, and the four children
// of a node share a cache line of *Timer pointers; with the comparison
// inlined (no heap.Interface dispatch, no any-boxing) sift-down is the
// kernel's entire inner loop. Order is (at, seq): seq breaks co-timed
// ties FIFO, which is the determinism contract.

// heapEntry is one heap slot. The fire time is stored inline so the
// sift loops compare against contiguous memory; the Timer is consulted
// only to break exact-time ties on seq (and to maintain its index).
// Four 16-byte entries — one parent's whole child group — share a
// cache line.
type heapEntry struct {
	at time.Duration
	t  *Timer
}

// entryLess reports whether a orders strictly before b: earlier time
// first, FIFO on ties via the scheduling sequence number.
func entryLess(a, b heapEntry) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.t.seq < b.t.seq
}

func (e *Engine) heapPush(t *Timer) {
	e.pq = append(e.pq, heapEntry{t.at, t})
	e.siftUp(len(e.pq) - 1)
}

func (e *Engine) heapPop() *Timer {
	pq := e.pq
	t := pq[0].t
	n := len(pq) - 1
	last := pq[n]
	pq[n] = heapEntry{}
	e.pq = pq[:n]
	t.index = -1
	if n > 0 {
		e.pq[0] = last
		last.t.index = 0
		e.siftDown(0)
	}
	return t
}

// heapRemove deletes the timer at heap index i.
func (e *Engine) heapRemove(i int) {
	pq := e.pq
	t := pq[i].t
	n := len(pq) - 1
	last := pq[n]
	pq[n] = heapEntry{}
	e.pq = pq[:n]
	t.index = -1
	if i < n {
		e.pq[i] = last
		last.t.index = i
		e.heapFix(i)
	}
}

// heapFix restores heap order after the timer at index i changed key,
// refreshing the inline time copy first.
func (e *Engine) heapFix(i int) {
	e.pq[i].at = e.pq[i].t.at
	e.siftDown(i)
	e.siftUp(i)
}

func (e *Engine) siftUp(i int) {
	pq := e.pq
	t := pq[i]
	for i > 0 {
		p := (i - 1) >> 2
		pt := pq[p]
		if !entryLess(t, pt) {
			break
		}
		pq[i] = pt
		pt.t.index = i
		i = p
	}
	pq[i] = t
	t.t.index = i
}

func (e *Engine) siftDown(i int) {
	pq := e.pq
	n := len(pq)
	t := pq[i]
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		// Select the smallest of up to four children.
		m, mt := c, pq[c]
		hi := c + 4
		if hi > n {
			hi = n
		}
		for j := c + 1; j < hi; j++ {
			if jt := pq[j]; entryLess(jt, mt) {
				m, mt = j, jt
			}
		}
		if !entryLess(mt, t) {
			break
		}
		pq[i] = mt
		mt.t.index = i
		i = m
	}
	pq[i] = t
	t.t.index = i
}
