// Package sim provides the discrete-event simulation kernel that drives
// every experiment in wattio: a virtual nanosecond clock, an event queue,
// and deterministic random number streams.
//
// Nothing in the simulator reads wall-clock time. A sixty-second power
// measurement runs in milliseconds of host time and is bit-for-bit
// reproducible given the same seed.
package sim

import (
	"container/heap"
	"fmt"
	"time"

	"wattio/internal/telemetry"
)

// Engine is a discrete-event scheduler over virtual time.
//
// Events scheduled for the same instant fire in scheduling order (FIFO),
// which keeps co-timed device and sampler events deterministic.
// Engine is not safe for concurrent use; the simulation is single-threaded
// by design so that results are reproducible.
type Engine struct {
	now time.Duration
	pq  eventHeap
	seq uint64

	// Telemetry taps. All are nil-safe no-ops when telemetry is off,
	// so the hot path pays one predicted branch per call.
	metrics  *telemetry.Registry
	tracer   *telemetry.Tracer
	cEvents  *telemetry.Counter
	cStopped *telemetry.Counter
	gHeap    *telemetry.Gauge
}

// NewEngine returns an Engine with the clock at zero and no pending
// events, tapped into the process-default telemetry (telemetry.Default)
// if one is installed.
func NewEngine() *Engine {
	e := &Engine{}
	e.EnableTelemetry(telemetry.Default(), telemetry.DefaultTracer())
	return e
}

// EnableTelemetry attaches a metrics registry and a tracer to the
// engine (either may be nil). Devices and workloads read these at
// construction time via Metrics and Tracer, so call it before building
// the testbed on the engine.
func (e *Engine) EnableTelemetry(reg *telemetry.Registry, tr *telemetry.Tracer) {
	e.metrics = reg
	e.tracer = tr
	e.cEvents = reg.Counter("sim_events_dispatched_total")
	e.cStopped = reg.Counter("sim_events_stopped_total")
	e.gHeap = reg.Gauge("sim_heap_depth")
}

// Metrics returns the engine's metrics registry; nil when telemetry is
// disabled (handles from a nil registry are no-ops, so callers may use
// the result unconditionally).
func (e *Engine) Metrics() *telemetry.Registry { return e.metrics }

// Tracer returns the engine's event tracer; nil when tracing is
// disabled (a nil tracer discards events, so callers may use the
// result unconditionally).
func (e *Engine) Tracer() *telemetry.Tracer { return e.tracer }

// Now returns the current virtual time.
func (e *Engine) Now() time.Duration { return e.now }

// Timer is a handle to a scheduled event. A Timer may be stopped before it
// fires; stopping an already-fired or already-stopped timer is a no-op.
type Timer struct {
	at      time.Duration
	seq     uint64
	fn      func()
	index   int // heap index, -1 once fired or stopped
	stopped bool
}

// At returns the virtual time the timer is (or was) scheduled to fire.
func (t *Timer) At() time.Duration { return t.at }

// Stop cancels the timer. It reports whether the timer was still pending.
func (t *Timer) Stop() bool {
	if t.stopped || t.index < 0 {
		return false
	}
	t.stopped = true
	return true
}

// Schedule runs fn at absolute virtual time at. Scheduling in the past
// (before Now) panics: it would silently reorder causality.
func (e *Engine) Schedule(at time.Duration, fn func()) *Timer {
	if at < e.now {
		panic(fmt.Sprintf("sim: schedule at %v before now %v", at, e.now))
	}
	if fn == nil {
		panic("sim: schedule with nil func")
	}
	t := &Timer{at: at, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.pq, t)
	e.gHeap.Set(int64(len(e.pq)))
	return t
}

// After runs fn when d has elapsed from the current virtual time.
func (e *Engine) After(d time.Duration, fn func()) *Timer {
	if d < 0 {
		panic(fmt.Sprintf("sim: negative delay %v", d))
	}
	return e.Schedule(e.now+d, fn)
}

// Step fires the next pending event, advancing the clock to its time.
// It reports whether an event fired (false when the queue is drained).
func (e *Engine) Step() bool {
	for len(e.pq) > 0 {
		t := heap.Pop(&e.pq).(*Timer)
		if t.stopped {
			e.cStopped.Inc()
			continue
		}
		// The virtual clock is monotone by construction (Schedule rejects
		// the past, the heap orders by time); this check turns any future
		// violation of that invariant into a loud failure rather than a
		// silently corrupted energy integral.
		if t.at < e.now {
			panic(fmt.Sprintf("sim: clock would go backward: event at %v, now %v", t.at, e.now))
		}
		e.now = t.at
		e.cEvents.Inc()
		e.gHeap.Set(int64(len(e.pq)))
		t.fn()
		return true
	}
	return false
}

// Run fires events until the queue is empty.
func (e *Engine) Run() {
	for e.Step() {
	}
}

// RunUntil fires events with time ≤ deadline, then advances the clock to
// the deadline. Events scheduled beyond the deadline remain pending.
func (e *Engine) RunUntil(deadline time.Duration) {
	for {
		t := e.peek()
		if t == nil || t.at > deadline {
			break
		}
		e.Step()
	}
	if e.now < deadline {
		e.now = deadline
	}
}

// Pending returns the number of events still queued (including events at
// the current instant, excluding stopped timers).
func (e *Engine) Pending() int {
	n := 0
	for _, t := range e.pq {
		if !t.stopped {
			n++
		}
	}
	return n
}

func (e *Engine) peek() *Timer {
	for len(e.pq) > 0 {
		t := e.pq[0]
		if t.stopped {
			heap.Pop(&e.pq)
			continue
		}
		return t
	}
	return nil
}

// eventHeap orders timers by (time, sequence).
type eventHeap []*Timer

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].at != h[j].at {
		return h[i].at < h[j].at
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	t := x.(*Timer)
	t.index = len(*h)
	*h = append(*h, t)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	t := old[n-1]
	old[n-1] = nil
	t.index = -1
	*h = old[:n-1]
	return t
}
