package sim

import (
	"testing"
	"time"
)

func TestReschedulePendingMoves(t *testing.T) {
	e := NewEngine()
	var at time.Duration
	tm := e.After(time.Second, func() { at = e.Now() })
	tm.Reschedule(3 * time.Second)
	e.Run()
	if at != 3*time.Second {
		t.Fatalf("rescheduled timer fired at %v, want 3s", at)
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d after run, want 0", e.Pending())
	}
}

func TestRescheduleAfterFire(t *testing.T) {
	e := NewEngine()
	fired := 0
	tm := e.After(time.Second, func() { fired++ })
	e.Run()
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	tm.Reschedule(5 * time.Second)
	e.Run()
	if fired != 2 {
		t.Fatalf("fired = %d after re-arm, want 2", fired)
	}
}

func TestStopThenReschedule(t *testing.T) {
	e := NewEngine()
	fired := 0
	tm := e.After(time.Second, func() { fired++ })
	if !tm.Stop() {
		t.Fatal("Stop on pending timer returned false")
	}
	tm.Reschedule(2 * time.Second)
	if !tm.Pending() {
		t.Fatal("rescheduled timer not pending")
	}
	e.Run()
	if fired != 1 {
		t.Fatalf("fired = %d, want 1 (the rescheduled firing only)", fired)
	}
	if e.Now() != 2*time.Second {
		t.Fatalf("fired at %v, want 2s", e.Now())
	}
}

func TestRescheduleTakesFreshSeq(t *testing.T) {
	// A rescheduled timer must order after events already scheduled at
	// the same instant — exactly as if it were a brand-new timer.
	e := NewEngine()
	var order []string
	e.Schedule(time.Second, func() { order = append(order, "a") })
	tm := e.Schedule(2*time.Second, func() { order = append(order, "moved") })
	e.Schedule(time.Second, func() { order = append(order, "b") })
	tm.Reschedule(time.Second)
	e.Run()
	if got := len(order); got != 3 {
		t.Fatalf("fired %d events, want 3", got)
	}
	if order[0] != "a" || order[1] != "b" || order[2] != "moved" {
		t.Fatalf("co-timed order = %v, want [a b moved]", order)
	}
}

func TestPeriodicFires(t *testing.T) {
	e := NewEngine()
	var at []time.Duration
	var tm *Timer
	tm = e.Periodic(time.Second, func() {
		at = append(at, e.Now())
		if len(at) == 3 {
			tm.Stop()
		}
	})
	e.Run()
	want := []time.Duration{time.Second, 2 * time.Second, 3 * time.Second}
	if len(at) != len(want) {
		t.Fatalf("fired %d times, want %d", len(at), len(want))
	}
	for i := range want {
		if at[i] != want[i] {
			t.Fatalf("tick %d at %v, want %v", i, at[i], want[i])
		}
	}
}

func TestPeriodicStoppedInsideCallback(t *testing.T) {
	// Stop from inside the timer's own callback: nothing is queued at
	// that moment, but the re-arm must be suppressed.
	e := NewEngine()
	fired := 0
	var tm *Timer
	tm = e.Periodic(time.Second, func() {
		fired++
		if !tm.Stop() {
			t.Error("Stop inside own callback returned false")
		}
		if tm.Stop() {
			t.Error("second Stop inside callback returned true")
		}
	})
	e.Run()
	if fired != 1 {
		t.Fatalf("fired = %d, want 1", fired)
	}
	if e.Pending() != 0 {
		t.Fatalf("Pending() = %d, want 0", e.Pending())
	}
}

func TestPeriodicRescheduleInsideCallback(t *testing.T) {
	// Reschedule from inside the callback overrides the next firing;
	// the period cadence resumes from the new time.
	e := NewEngine()
	var at []time.Duration
	var tm *Timer
	tm = e.Periodic(time.Second, func() {
		at = append(at, e.Now())
		switch len(at) {
		case 1:
			tm.Reschedule(5 * time.Second)
		case 3:
			tm.Stop()
		}
	})
	e.Run()
	want := []time.Duration{time.Second, 5 * time.Second, 6 * time.Second}
	if len(at) != len(want) {
		t.Fatalf("fired %d times, want %d (%v)", len(at), len(want), at)
	}
	for i := range want {
		if at[i] != want[i] {
			t.Fatalf("tick %d at %v, want %v", i, at[i], want[i])
		}
	}
}

func TestPostFreeListAliasing(t *testing.T) {
	// A pooled timer is recycled the moment it fires; the next Post must
	// reuse the struct without firing the previous closure.
	e := NewEngine()
	var order []string
	e.Post(time.Second, func() { order = append(order, "first") })
	e.Step()
	reused := e.free
	if reused == nil {
		t.Fatal("fired pooled timer was not returned to the free list")
	}
	if reused.fn != nil {
		t.Fatal("recycled timer retains its closure")
	}
	e.Post(2*time.Second, func() { order = append(order, "second") })
	if e.free != nil {
		t.Fatal("second Post did not draw from the free list")
	}
	e.Run()
	if len(order) != 2 || order[0] != "first" || order[1] != "second" {
		t.Fatalf("order = %v, want [first second]", order)
	}
}

func TestPostRepostFromCallback(t *testing.T) {
	// The callback of a pooled timer may Post again and reuse the very
	// timer that is firing.
	e := NewEngine()
	fired := 0
	var fn func()
	fn = func() {
		fired++
		if fired < 5 {
			e.PostAfter(time.Second, fn)
		}
	}
	e.PostAfter(time.Second, fn)
	e.Run()
	if fired != 5 {
		t.Fatalf("fired = %d, want 5", fired)
	}
}

func TestStopRemovesEagerly(t *testing.T) {
	// Stopping a timer removes it from the queue immediately — Pending
	// never counts cancelled work.
	e := NewEngine()
	tm := e.After(time.Second, func() {})
	before := e.Pending()
	tm.Stop()
	if e.Pending() != before-1 {
		t.Fatalf("Pending went %d -> %d on Stop, want eager removal", before, e.Pending())
	}
}

// --- timing wheel ---------------------------------------------------------

func TestWheelFarChainEvent(t *testing.T) {
	// A chain event far beyond the near window parks on the wheel and
	// still fires in global (time, seq) order with near events.
	e := NewEngine()
	c := e.NewChain()
	var order []string
	c.Post(10*wheelWidth, func() { order = append(order, "far") })
	e.Schedule(wheelWidth/2, func() { order = append(order, "near") })
	e.Schedule(10*wheelWidth, func() { order = append(order, "co-timed-later") })
	if e.Pending() != 3 {
		t.Fatalf("Pending() = %d, want 3 (parked events counted)", e.Pending())
	}
	e.Run()
	if len(order) != 3 || order[0] != "near" || order[1] != "far" || order[2] != "co-timed-later" {
		t.Fatalf("order = %v, want [near far co-timed-later]", order)
	}
}

func TestWheelOverflow(t *testing.T) {
	// An event beyond the wheel span lands in the overflow list and is
	// re-filed when the cursor wraps; interleave nearer chain events so
	// the wheel genuinely revolves.
	e := NewEngine()
	far := e.NewChain()
	busy := e.NewChain()
	var got []time.Duration
	farAt := 3 * wheelSpan
	far.Post(farAt, func() { got = append(got, e.Now()) })
	var tick func()
	step := wheelSpan / 16
	tick = func() {
		got = append(got, e.Now())
		if e.Now()+step < farAt+step {
			busy.PostLoose(e.Now()+step, tick)
		}
	}
	busy.Post(step, tick)
	e.Run()
	if got[len(got)-1] != farAt {
		t.Fatalf("overflow event fired at %v, want %v (fired %d events)", got[len(got)-1], farAt, len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Fatalf("time went backward: %v after %v", got[i], got[i-1])
		}
	}
}

func TestWheelSparseSchedule(t *testing.T) {
	// With the wheel empty, parking a far event jumps the window forward
	// instead of walking thousands of empty buckets (behaviorally: the
	// event still fires at its time, cheap or not).
	e := NewEngine()
	c := e.NewChain()
	fired := time.Duration(-1)
	c.Post(time.Second, func() { fired = e.Now() })
	e.Run()
	if fired != time.Second {
		t.Fatalf("sparse far event fired at %v, want 1s", fired)
	}
}

func TestAdvanceToRespectsParkedEvents(t *testing.T) {
	e := NewEngine()
	c := e.NewChain()
	c.Post(5*wheelWidth, func() {})
	// Advancing short of the parked event is fine.
	e.AdvanceTo(2 * wheelWidth)
	if e.Now() != 2*wheelWidth {
		t.Fatalf("Now() = %v, want %v", e.Now(), 2*wheelWidth)
	}
	// Advancing past it must panic: the event would be skipped.
	defer func() {
		if recover() == nil {
			t.Fatal("AdvanceTo past a parked chain event did not panic")
		}
	}()
	e.AdvanceTo(6 * wheelWidth)
}

func TestNextEventAtSeesParkedEvents(t *testing.T) {
	e := NewEngine()
	c := e.NewChain()
	c.Post(7*wheelWidth, func() {})
	at, ok := e.NextEventAt()
	if !ok || at != 7*wheelWidth {
		t.Fatalf("NextEventAt() = %v, %v; want %v, true", at, ok, 7*wheelWidth)
	}
}

// --- chains ---------------------------------------------------------------

func TestChainFIFOWithPlainTimers(t *testing.T) {
	// Co-timed events fire in scheduling order regardless of whether
	// they ride a chain or the heap.
	e := NewEngine()
	c := e.NewChain()
	var order []int
	rec := func(i int) func() { return func() { order = append(order, i) } }
	e.Schedule(time.Second, rec(0))
	c.Post(time.Second, rec(1))
	e.Schedule(time.Second, rec(2))
	c.Post(time.Second, rec(3))
	e.Run()
	for i, v := range order {
		if v != i {
			t.Fatalf("co-timed chain/plain order = %v, want [0 1 2 3]", order)
		}
	}
}

func TestChainBackwardPostPanics(t *testing.T) {
	e := NewEngine()
	c := e.NewChain()
	c.Post(2*time.Second, func() {})
	defer func() {
		if recover() == nil {
			t.Fatal("backward chain Post did not panic")
		}
	}()
	c.Post(time.Second, func() {})
}

func TestChainPostLooseFallsBack(t *testing.T) {
	// PostLoose with a time before the chain's last rides the plain
	// queue; global fire order is still (time, seq).
	e := NewEngine()
	c := e.NewChain()
	var order []string
	c.Post(2*time.Second, func() { order = append(order, "late") })
	c.PostLoose(time.Second, func() { order = append(order, "early") })
	if c.Len() != 1 {
		t.Fatalf("chain Len() = %d, want 1 (loose post fell back)", c.Len())
	}
	e.Run()
	if len(order) != 2 || order[0] != "early" || order[1] != "late" {
		t.Fatalf("order = %v, want [early late]", order)
	}
}

func TestChainRingGrowth(t *testing.T) {
	// Buffer far more events than the initial ring; order must survive
	// the unwrap-and-double growth.
	e := NewEngine()
	c := e.NewChain()
	const n = 100
	var got []int
	for i := 0; i < n; i++ {
		i := i
		c.Post(time.Duration(i)*time.Millisecond, func() { got = append(got, i) })
	}
	if e.Pending() != n {
		t.Fatalf("Pending() = %d, want %d", e.Pending(), n)
	}
	e.Run()
	if len(got) != n {
		t.Fatalf("fired %d, want %d", len(got), n)
	}
	for i, v := range got {
		if v != i {
			t.Fatalf("chain events reordered at %d: %v...", i, got[:i+1])
		}
	}
}

func TestChainPostFromOwnCallback(t *testing.T) {
	// A chain event may extend its own chain while firing — the pattern
	// every serialized device resource uses.
	e := NewEngine()
	c := e.NewChain()
	fired := 0
	var fn func()
	fn = func() {
		fired++
		if fired < 8 {
			c.Post(e.Now()+time.Millisecond, fn)
		}
	}
	c.Post(time.Millisecond, fn)
	e.Run()
	if fired != 8 {
		t.Fatalf("fired = %d, want 8", fired)
	}
}

// --- steady-state allocation guarantees -----------------------------------

func TestEngineScheduleAllocFree(t *testing.T) {
	// The Post → fire → recycle cycle must not allocate at steady state:
	// the Timer comes from the free list and the heap slot is reused.
	e := NewEngine()
	var fn func()
	fn = func() { e.PostAfter(time.Microsecond, fn) }
	e.PostAfter(time.Microsecond, fn)
	e.Step() // warm the free list and the heap slice
	if n := testing.AllocsPerRun(1000, func() { e.Step() }); n != 0 {
		t.Fatalf("steady-state Post/fire cycle allocates %v per event, want 0", n)
	}
}

func TestPeriodicAllocFree(t *testing.T) {
	e := NewEngine()
	e.Periodic(time.Microsecond, func() {})
	e.Step()
	if n := testing.AllocsPerRun(1000, func() { e.Step() }); n != 0 {
		t.Fatalf("periodic re-arm allocates %v per tick, want 0", n)
	}
}

func TestChainAllocFree(t *testing.T) {
	// Chain post → fire → re-key, including wheel parking (the
	// microsecond period is beyond the near window).
	e := NewEngine()
	c := e.NewChain()
	var fn func()
	fn = func() { c.Post(e.Now()+time.Microsecond, fn) }
	c.Post(time.Microsecond, fn)
	e.Step() // warm: allocates the wheel bucket array on first park
	if n := testing.AllocsPerRun(1000, func() { e.Step() }); n != 0 {
		t.Fatalf("steady-state chain cycle allocates %v per event, want 0", n)
	}
}

// --- kernel microbenchmarks -----------------------------------------------

// BenchmarkEngineSchedule measures the steady-state schedule → dispatch
// cycle: 64 concurrent pooled event streams re-posting themselves. Zero
// allocs/op is asserted by TestEngineScheduleAllocFree.
func BenchmarkEngineSchedule(b *testing.B) {
	e := NewEngine()
	const fan = 64
	var fn func()
	fn = func() { e.PostAfter(time.Microsecond, fn) }
	for i := 1; i <= fan; i++ {
		e.PostAfter(time.Duration(i)*time.Microsecond/fan, fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}

// BenchmarkEngineChain measures the chain fast path under fan-out wide
// enough that representatives park on the timing wheel.
func BenchmarkEngineChain(b *testing.B) {
	e := NewEngine()
	const fan = 64
	chains := make([]*Chain, fan)
	for i := range chains {
		c := e.NewChain()
		chains[i] = c
		var fn func()
		fn = func() { c.Post(e.Now()+50*time.Microsecond, fn) }
		c.Post(time.Duration(i+1)*time.Microsecond, fn)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Step()
	}
}
