package sim

import (
	"hash/fnv"
	"math"
	"math/rand/v2"
)

// RNG is a deterministic random source. Experiments derive one named
// stream per consumer (measurement noise, workload offsets, seek
// distances, …) so that adding a consumer never perturbs the draws seen
// by existing ones.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a root stream for the given seed.
func NewRNG(seed uint64) *RNG {
	return &RNG{r: rand.New(rand.NewPCG(seed, splitmix64(seed)))}
}

// Stream derives an independent child stream keyed by name. The same
// (seed, name) pair always yields the same sequence.
func (g *RNG) Stream(name string) *RNG {
	h := fnv.New64a()
	h.Write([]byte(name))
	k := h.Sum64()
	a := g.r.Uint64() // fold in parent position once, at derivation time
	return &RNG{r: rand.New(rand.NewPCG(a^k, splitmix64(k)))}
}

// Float64 returns a uniform draw in [0, 1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Uint64 returns a uniform 64-bit draw.
func (g *RNG) Uint64() uint64 { return g.r.Uint64() }

// Int64N returns a uniform draw in [0, n). It panics if n <= 0.
func (g *RNG) Int64N(n int64) int64 { return g.r.Int64N(n) }

// IntN returns a uniform draw in [0, n). It panics if n <= 0.
func (g *RNG) IntN(n int) int { return g.r.IntN(n) }

// NormFloat64 returns a standard normal draw.
func (g *RNG) NormFloat64() float64 { return g.r.NormFloat64() }

// Gaussian returns a normal draw with the given mean and standard
// deviation.
func (g *RNG) Gaussian(mean, stddev float64) float64 {
	return mean + stddev*g.r.NormFloat64()
}

// Exponential returns an exponential draw with the given mean.
func (g *RNG) Exponential(mean float64) float64 {
	u := g.r.Float64()
	if u >= 1 {
		u = math.Nextafter(1, 0)
	}
	return -mean * math.Log(1-u)
}

// splitmix64 is the standard splitmix64 finalizer, used to expand one
// 64-bit seed into a second PCG word.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}
