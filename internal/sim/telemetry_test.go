package sim

import (
	"testing"
	"time"

	"wattio/internal/telemetry"
)

func TestEngineTelemetryTaps(t *testing.T) {
	t.Parallel()
	reg := telemetry.NewRegistry()
	eng := NewEngine()
	eng.EnableTelemetry(reg, nil)
	if eng.Metrics() != reg {
		t.Fatal("Metrics accessor lost the registry")
	}

	fired := 0
	for i := 0; i < 5; i++ {
		eng.After(time.Duration(i+1)*time.Millisecond, func() { fired++ })
	}
	stop := eng.After(10*time.Millisecond, func() { t.Error("stopped timer fired") })
	stop.Stop()

	eng.Run()
	if fired != 5 {
		t.Fatalf("fired %d, want 5", fired)
	}
	if got := reg.Counter("sim_events_dispatched_total").Value(); got != 5 {
		t.Errorf("events dispatched %d, want 5", got)
	}
	if got := reg.Counter("sim_events_stopped_total").Value(); got != 1 {
		t.Errorf("events stopped %d, want 1", got)
	}

	// The heap-depth gauge is amortized: it refreshes once every
	// heapGaugeMask+1 dispatches, not on every schedule/pop. Drive a
	// deep heap past one full cadence and check the gauge caught a
	// nonzero depth along the way.
	depth := int(heapGaugeMask) + 64
	for i := 0; i < depth; i++ {
		eng.PostAfter(time.Duration(i+1)*time.Microsecond, func() {})
	}
	eng.Run()
	if got := reg.Gauge("sim_heap_depth").Max(); got <= 0 {
		t.Errorf("heap depth high-water %d after %d dispatches, want > 0", got, depth)
	}
}

// TestEngineWithoutTelemetry pins the disabled path: a plain engine has
// nil telemetry and dispatch still works (the taps are no-ops).
func TestEngineWithoutTelemetry(t *testing.T) {
	t.Parallel()
	eng := NewEngine()
	if eng.Metrics() != nil && telemetry.Default() == nil {
		t.Fatal("engine invented a registry")
	}
	ran := false
	eng.After(time.Millisecond, func() { ran = true })
	eng.Run()
	if !ran {
		t.Fatal("event did not fire")
	}
}
