package sim

import (
	"testing"
	"time"
)

// TestWheelSpanBoundaryParksOnWheel pins the timing-wheel boundary
// semantics: a chain representative whose head event lands exactly one
// full revolution out (at == wBase+wheelSpan) files into its wheel
// bucket, not the overflow list. Before the fix, park routed the exact
// boundary to overflow (`>= wheelSpan`) while the invariant and the
// re-file path treated the wheel as covering it — the rep took a
// needless extra revolution through the overflow scan, and the two
// paths disagreed about which structure owned the boundary.
func TestWheelSpanBoundaryParksOnWheel(t *testing.T) {
	t.Parallel()
	e := NewEngine()
	near, far := e.NewChain(), e.NewChain()

	// Occupy the wheel first so park's empty-wheel window jump cannot
	// move wBase: the boundary value below stays exact.
	near.Post(wheelWidth, func() {})
	if e.wheelCnt != 1 || e.overflowCnt != 0 {
		t.Fatalf("setup: wheelCnt=%d overflowCnt=%d, want 1, 0", e.wheelCnt, e.overflowCnt)
	}

	// Head exactly at wBase+wheelSpan: must park on the wheel.
	var fired []time.Duration
	far.Post(e.wBase+wheelSpan, func() { fired = append(fired, e.Now()) })
	if e.overflowCnt != 0 {
		t.Fatalf("rep at exactly wBase+wheelSpan went to overflow (overflowCnt=%d, wheelCnt=%d)",
			e.overflowCnt, e.wheelCnt)
	}
	if e.wheelCnt != 2 {
		t.Fatalf("wheelCnt = %d, want 2", e.wheelCnt)
	}

	// Strictly beyond the span still overflows.
	deep := e.NewChain()
	deep.Post(e.wBase+wheelSpan+1, func() { fired = append(fired, e.Now()) })
	if e.overflowCnt != 1 {
		t.Fatalf("rep beyond wBase+wheelSpan should overflow (overflowCnt=%d)", e.overflowCnt)
	}

	if e.Pending() != 3 {
		t.Fatalf("Pending = %d, want 3", e.Pending())
	}
	want := []time.Duration{wheelSpan, wheelSpan + 1}
	e.Run()
	if len(fired) != 2 || fired[0] != want[0] || fired[1] != want[1] {
		t.Fatalf("fired at %v, want %v", fired, want)
	}
}

// TestWheelSpanBoundaryFireOrder drives co-timed and boundary-adjacent
// events through heap, wheel, and overflow and checks the dispatch
// order is exactly (time, then scheduling order) — the exact-boundary
// rep must not be reordered by which structure carried it.
func TestWheelSpanBoundaryFireOrder(t *testing.T) {
	t.Parallel()
	e := NewEngine()
	var got []int
	note := func(id int) func() { return func() { got = append(got, id) } }

	a, b, c := e.NewChain(), e.NewChain(), e.NewChain()
	a.Post(wheelWidth, note(0))  // wheel, defeats the window jump
	b.Post(wheelSpan-1, note(1)) // wheel, last bucket
	c.Post(wheelSpan, note(2))   // exact boundary: wheel
	e.Post(wheelSpan, note(3))   // plain timer, co-timed with 2: FIFO after it
	d := e.NewChain()
	d.Post(wheelSpan+wheelWidth, note(4)) // beyond the span: overflow
	e.Post(wheelWidth-1, note(5))         // near heap

	e.Run()
	want := []int{5, 0, 1, 2, 3, 4}
	if len(got) != len(want) {
		t.Fatalf("fired %d events, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("fire order %v, want %v", got, want)
		}
	}
}

// TestChainParkUnpark covers the kernel hook the mesoscale tier uses:
// parking removes the representative from whichever structure holds it
// (near heap, wheel bucket, overflow list) without losing buffered
// events, and unparking restores the exact fire order.
func TestChainParkUnpark(t *testing.T) {
	t.Parallel()
	cases := []struct {
		name string
		at   time.Duration // where the parked chain's head lands
	}{
		{"heap", 10},
		{"wheel", 2 * wheelWidth},
		{"overflow", wheelSpan + 2*wheelWidth},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			e := NewEngine()
			// A second chain keeps the wheel occupied so the window jump
			// cannot reclassify tc.at, and provides interleaved events.
			other := e.NewChain()
			other.Post(wheelWidth, func() {})

			var got []time.Duration
			c := e.NewChain()
			c.Post(tc.at, func() { got = append(got, e.Now()) })
			c.Post(tc.at+5, func() { got = append(got, e.Now()) })

			pendingBefore := e.Pending()
			c.Park()
			if !c.Parked() {
				t.Fatal("Parked() = false after Park")
			}
			if e.Pending() != pendingBefore {
				t.Fatalf("Pending changed across Park: %d -> %d", pendingBefore, e.Pending())
			}
			c.Park() // idempotent

			// Posts while parked buffer without arming.
			c.Post(tc.at+9, func() { got = append(got, e.Now()) })
			if e.Pending() != pendingBefore+1 {
				t.Fatalf("Pending = %d after parked post, want %d", e.Pending(), pendingBefore+1)
			}

			// With the chain parked, running up to (but not past) its head
			// fires only the interleaved plain event.
			interleaved := false
			e.Post(5, func() { interleaved = true })
			e.RunUntil(5)
			if !interleaved || len(got) != 0 {
				t.Fatalf("interleaved=%v, parked chain fired %d events", interleaved, len(got))
			}

			c.Unpark()
			c.Unpark() // idempotent
			e.Run()
			want := []time.Duration{tc.at, tc.at + 5, tc.at + 9}
			if len(got) != len(want) {
				t.Fatalf("fired %v, want %v", got, want)
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("fired %v, want %v", got, want)
				}
			}
		})
	}
}

// TestChainParkEmpty: parking an empty chain suspends future arming
// until Unpark; events posted meanwhile are preserved.
func TestChainParkEmpty(t *testing.T) {
	t.Parallel()
	e := NewEngine()
	c := e.NewChain()
	c.Park()
	var got []time.Duration
	c.Post(3, func() { got = append(got, e.Now()) })
	c.Post(7, func() { got = append(got, e.Now()) })
	if e.Pending() != 2 {
		t.Fatalf("Pending = %d, want 2", e.Pending())
	}
	e.Run() // nothing armed: no-op
	if len(got) != 0 {
		t.Fatalf("parked chain fired %v", got)
	}
	c.Unpark()
	e.Run()
	if len(got) != 2 || got[0] != 3 || got[1] != 7 {
		t.Fatalf("fired %v, want [3ns 7ns]", got)
	}
}

// TestChainUnparkPastHeadPanics: sleeping through a parked chain's head
// event and then unparking would run causality backward; the kernel
// refuses loudly.
func TestChainUnparkPastHeadPanics(t *testing.T) {
	t.Parallel()
	e := NewEngine()
	c := e.NewChain()
	c.Post(5, func() {})
	c.Park()
	e.RunUntil(100)
	defer func() {
		if recover() == nil {
			t.Fatal("Unpark past the head event did not panic")
		}
	}()
	c.Unpark()
}
