// Rollout: the paper's §4.1 deployment discussion. Power-adaptive
// control rolls out incrementally below the lowest tier of the power
// hierarchy, spread across breaker domains so coordinated control
// failures cannot concentrate; a domain that fails to shed power is
// caught by the sub-rack breaker check and halted before the rack-level
// budget is threatened.
package main

import (
	"fmt"
	"log"
	"time"

	"wattio/internal/adaptive"
	"wattio/internal/catalog"
	"wattio/internal/device"
	"wattio/internal/sim"
	"wattio/internal/workload"
)

func main() {
	eng := sim.NewEngine()
	rng := sim.NewRNG(31)

	// A rack: two sub-racks, each with two leaf power domains of two
	// SSD2s. Breakers are physical ratings, safe even for uncapped
	// load; the rollout's job is to get the rack under a *contractual*
	// storage power budget of 95 W for a demand-response event.
	const budgetW = 95.0
	const cappedLeafW = 22.0 // 2 devices × 10 W cap + ripple slack
	leaf := func(name string) *adaptive.Domain {
		d := &adaptive.Domain{Name: name, BreakerW: 40}
		for i := 0; i < 2; i++ {
			d.Devices = append(d.Devices, catalog.NewSSD2(eng, rng.Stream(name+string(rune('0'+i)))))
		}
		return d
	}
	rack := &adaptive.Domain{
		Name: "rack", BreakerW: 130,
		Children: []*adaptive.Domain{
			{Name: "subrackA", BreakerW: 65, Children: []*adaptive.Domain{leaf("A1"), leaf("A2")}},
			{Name: "subrackB", BreakerW: 65, Children: []*adaptive.Domain{leaf("B1"), leaf("B2")}},
		},
	}
	rollout := adaptive.NewRollout(rack)

	// applyCaps is what "deploying power-adaptive control" means for a
	// leaf: pin every device to ps2 (10 W). The injected failure is a
	// domain whose agent silently fails to apply the caps.
	applyCaps := func(d *adaptive.Domain, failed bool) {
		for _, dev := range d.Devices {
			if failed {
				continue // control failure: caps never land
			}
			if err := dev.SetPowerState(2); err != nil {
				log.Fatal(err)
			}
		}
	}
	// Every device carries heavy write load throughout.
	for _, leaf := range rack.Leaves() {
		for _, dev := range leaf.Devices {
			workload.Start(eng, dev, workload.Job{
				Op: device.OpWrite, Pattern: workload.Rand, BS: 256 << 10, Depth: 64,
				Runtime: time.Minute,
			}, rng.Stream("wl/"+leaf.Name+dev.Name()))
		}
	}

	fmt.Println("stage 1: enable two domains, spread across sub-racks")
	stage1 := rollout.Stage(2)
	applyCaps(stage1[0], false)
	applyCaps(stage1[1], true) // inject: this domain's agent is broken
	for _, d := range stage1 {
		fmt.Printf("  enabled %s\n", d.Name)
	}

	// avgWindow measures each domain's average power over one second —
	// instantaneous samples would false-positive on throttle-quantum
	// bursts that are perfectly cap-compliant on average.
	avgWindow := func() func(*adaptive.Domain) float64 {
		start := map[*adaptive.Domain]float64{}
		for _, l := range rack.Leaves() {
			start[l] = l.EnergyJ()
		}
		rackE, t0 := rack.EnergyJ(), eng.Now()
		eng.RunUntil(eng.Now() + time.Second)
		dt := (eng.Now() - t0).Seconds()
		fmt.Printf("\nrack draw: %.1f W avg (physical breaker %.0f W, DR budget %.0f W)\n",
			(rack.EnergyJ()-rackE)/dt, rack.BreakerW, budgetW)
		return func(d *adaptive.Domain) float64 { return (d.EnergyJ() - start[d]) / dt }
	}

	measure := avgWindow()
	if v := rack.CheckBreakers(); len(v) != 0 {
		log.Fatalf("physical breakers should be safe: %v", v)
	}
	// §4.1 audit: every enabled domain must be drawing capped power.
	for _, d := range rollout.Audit(measure, cappedLeafW) {
		fmt.Printf("audit: %s draws %.1f W avg, expected ≤ %.0f W — control failure localized\n",
			d.Name, measure(d), cappedLeafW)
		if err := rollout.Halt(d); err != nil {
			log.Fatal(err)
		}
		// Containment: the devices are still healthy; re-apply caps
		// through a fallback path.
		applyCaps(d, false)
		fmt.Printf("  halted %s and re-applied caps via fallback\n", d.Name)
	}
	measure = avgWindow()
	fmt.Printf("after containment: failing domains: %d\n", len(rollout.Audit(measure, cappedLeafW)))

	fmt.Println("\nstage 2: confidence restored, enable the remaining domains")
	for _, d := range rollout.Stage(10) {
		applyCaps(d, false)
		fmt.Printf("  enabled %s\n", d.Name)
	}
	e0, t0 := rack.EnergyJ(), eng.Now()
	eng.RunUntil(eng.Now() + 2*time.Second)
	finalW := (rack.EnergyJ() - e0) / (eng.Now() - t0).Seconds()
	status := "MET"
	if finalW > budgetW {
		status = "MISSED"
	}
	fmt.Printf("\nfinal: %d/%d domains adaptive, rack %.1f W avg — DR budget %.0f W %s\n",
		rollout.EnabledCount(), len(rack.Leaves()), finalW, budgetW, status)
	fmt.Println("(uncapped, this rack draws ~118 W of storage power at full write load)")
}
