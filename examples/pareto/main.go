// Pareto: the paper's §3.3 end to end. Sweep the full IO-shape ×
// power-state grid on two heterogeneous SSDs to build their
// power-throughput models, combine them into a fleet Pareto frontier,
// and let the budget controller pick and apply concrete power states
// for a sequence of shrinking power budgets — including the paper's
// worked curtailment example on SSD1.
package main

import (
	"fmt"
	"log"
	"time"

	"wattio/internal/adaptive"
	"wattio/internal/catalog"
	"wattio/internal/core"
	"wattio/internal/device"
	"wattio/internal/sim"
	"wattio/internal/sweep"
	"wattio/internal/workload"
)

func main() {
	fmt.Println("building power-throughput models (random write grid)...")
	models := map[string]*core.Model{}
	for _, name := range []string{"SSD1", "SSD2"} {
		m, err := sweep.BuildModel(name, device.OpWrite, workload.Rand, 42, 3*time.Second, 512<<20)
		if err != nil {
			log.Fatal(err)
		}
		models[name] = m
		fmt.Printf("  %s: %d operating points, power %.1f-%.1f W (dynamic range %.1f%%)\n",
			name, len(m.Samples()), m.MinPowerW(), m.MaxPowerW(), 100*m.DynamicRangeFrac())
	}

	// The paper's worked example: SSD1 at qd64/256KiB, shed 20% power.
	var from core.Sample
	for _, s := range models["SSD1"].Samples() {
		if s.PowerState == 0 && s.Depth == 64 && s.ChunkBytes == 256<<10 {
			from = s
			break
		}
	}
	plan, err := models["SSD1"].Curtail(from, 0.20)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nSSD1 curtailment for a 20%% power cut:\n")
	fmt.Printf("  from %v: %.2f W, %.2f GiB/s\n", plan.From.Config, plan.From.PowerW, plan.From.ThroughputMBps/1073.74)
	fmt.Printf("  to   %v: %.2f W, %.2f GiB/s\n", plan.To.Config, plan.To.PowerW, plan.To.ThroughputMBps/1073.74)
	fmt.Printf("  curtail %.2f GiB/s of best-effort load; keep %.0f%% of throughput\n",
		plan.CurtailMBps/1073.74, 100*plan.ThroughputKept)

	// Fleet frontier across both devices.
	fleet, err := core.NewFleet(models["SSD1"], models["SSD2"])
	if err != nil {
		log.Fatal(err)
	}
	fr := fleet.ParetoFrontier()
	fmt.Printf("\nfleet Pareto frontier: %d assignments from %.1f W to %.1f W\n",
		len(fr), fr[0].TotalPowerW, fr[len(fr)-1].TotalPowerW)

	// Apply shrinking budgets to live devices.
	eng := sim.NewEngine()
	rng := sim.NewRNG(3)
	live := []device.Device{catalog.NewSSD1(eng, rng.Stream("1")), catalog.NewSSD2(eng, rng.Stream("2"))}
	bc, err := adaptive.NewBudgetController(fleet, live)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nbudget controller:")
	for _, budget := range []float64{25, 20, 16, 13} {
		a, err := bc.Apply(budget)
		if err != nil {
			fmt.Printf("  %5.1f W: %v\n", budget, err)
			continue
		}
		fmt.Printf("  %5.1f W budget → %.1f W, %.0f MB/s:", budget, a.TotalPowerW, a.TotalMBps)
		for _, name := range []string{"SSD1", "SSD2"} {
			s := a.Configs[name]
			fmt.Printf("  %s→ps%d/%dKiB/qd%d", name, s.PowerState, s.ChunkBytes/1024, s.Depth)
		}
		fmt.Println()
	}
}
