// Quickstart: build a simulated data-center SSD, clamp the measurement
// rig onto its power rails, run a fio-style workload, and read back
// throughput, latency, and measured power — the whole pipeline of the
// paper's measurement study in thirty lines.
package main

import (
	"fmt"
	"log"
	"time"

	"wattio/internal/catalog"
	"wattio/internal/device"
	"wattio/internal/measure"
	"wattio/internal/sim"
	"wattio/internal/sweep"
	"wattio/internal/workload"
)

func main() {
	// Everything lives on one discrete-event engine; a fixed seed makes
	// the run exactly reproducible.
	eng := sim.NewEngine()
	rng := sim.NewRNG(1)

	// SSD2 is the Intel D7-P5510 model from the paper's Table 1.
	dev := catalog.NewSSD2(eng, rng)

	// The rig is the paper's Figure 1: shunt resistor, amplifier,
	// 24-bit ADC at 1 kHz, Arduino serial framing, calibrated logger.
	rig, err := measure.NewRig(eng, rng, dev, measure.DefaultRigConfig(sweep.RailFor(dev)))
	if err != nil {
		log.Fatal(err)
	}
	rig.Start()

	// fio --rw=randwrite --bs=256k --iodepth=64 --runtime=60 --size=4G
	res := workload.Run(eng, dev, workload.Job{
		Op:         device.OpWrite,
		Pattern:    workload.Rand,
		BS:         256 << 10,
		Depth:      64,
		Runtime:    time.Minute,
		TotalBytes: 4 << 30,
	}, rng)
	rig.Stop()

	sum := rig.Trace().Summary()
	fmt.Printf("device     : %s (%s)\n", dev.Name(), dev.Model())
	fmt.Printf("throughput : %.0f MB/s (%.0f IOPS)\n", res.BandwidthMBps, res.IOPS)
	fmt.Printf("latency    : avg %v, p99 %v\n", res.LatAvg.Round(time.Microsecond), res.LatP99.Round(time.Microsecond))
	fmt.Printf("power      : avg %.2f W, swing %.2f-%.2f W over %d samples\n", sum.Mean, sum.Min, sum.Max, sum.N)
	fmt.Printf("energy     : %.2f nJ per byte written\n", dev.EnergyJ()/float64(res.Bytes)*1e9)
}
