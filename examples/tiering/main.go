// Tiering: the paper's §4 "masking HDD spin-up with SSD write
// absorption". The HDD spends the quiet period spun down at 1.1 W
// instead of 3.76 W; writes that arrive meanwhile land in an SSD log
// with sub-millisecond acks, and a flush migrates them home when the
// disk wakes for the busy period.
package main

import (
	"fmt"
	"log"
	"time"

	"wattio/internal/adaptive"
	"wattio/internal/catalog"
	"wattio/internal/device"
	"wattio/internal/sim"
)

func main() {
	eng := sim.NewEngine()
	rng := sim.NewRNG(21)
	fast := catalog.NewSSD3(eng, rng.Stream("ssd"))
	slow := catalog.NewHDD(eng, rng.Stream("hdd"))
	tier, err := adaptive.NewTierManager(fast, slow, 0, 4<<30)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("quiet period: spin the HDD down")
	if err := slow.EnterStandby(); err != nil {
		log.Fatal(err)
	}
	eng.RunUntil(eng.Now() + 5*time.Second)
	fmt.Printf("  HDD power: %.2f W (spun down; awake idle is 3.76 W)\n", slow.InstantPower())

	// Background writes trickle in during the quiet hour.
	var lats []time.Duration
	pending := 0
	for i := 0; i < 200; i++ {
		off := int64(i) << 22
		submitted := eng.Now()
		pending++
		tier.Submit(device.Request{Op: device.OpWrite, Offset: off, Size: 256 << 10}, func() {
			lats = append(lats, eng.Now()-submitted)
			pending--
		})
		eng.RunUntil(eng.Now() + 10*time.Millisecond)
	}
	for pending > 0 && eng.Step() {
	}
	var worst, sum time.Duration
	for _, l := range lats {
		sum += l
		if l > worst {
			worst = l
		}
	}
	fmt.Printf("  absorbed %d writes (%.0f MiB) into the SSD log\n", tier.AbsorbedWrites, float64(tier.AbsorbedBytes)/(1<<20))
	fmt.Printf("  write latency: avg %v, worst %v — no spin-up stall (would be ~8.5 s)\n",
		(sum / time.Duration(len(lats))).Round(time.Microsecond), worst.Round(time.Microsecond))
	fmt.Printf("  HDD still spun down: %v\n", slow.Standby())

	fmt.Println("\nbusy period: wake the disk and flush the log home")
	flushStart := eng.Now()
	doneFlush := false
	tier.Flush(func() { doneFlush = true })
	for !doneFlush && eng.Step() {
	}
	fmt.Printf("  flush of %d blocks finished in %v (includes the %.1f s spin-up)\n",
		tier.AbsorbedWrites, (eng.Now() - flushStart).Round(time.Millisecond), 8.5)
	fmt.Printf("  pending bytes after flush: %d\n", tier.PendingBytes())
	fmt.Printf("  HDD power: %.2f W (awake)\n", slow.InstantPower())
}
