// Powercap: the paper's §3.2.1 and §4 in action. First walk SSD2's
// NVMe power states under sequential writes and reads to see the
// asymmetry (caps crush writes, barely touch reads); then exploit it
// with adaptive.AsymmetricPlacer — segregate writes onto one uncapped
// device and cap the read-serving devices, cutting ensemble power with
// little QoS impact.
//
// The device and workload shape come from a scenario spec
// (scenarios/powercap.json by default); run from the repo root, or
// point -scenario at the file.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"wattio/internal/adaptive"
	"wattio/internal/catalog"
	"wattio/internal/device"
	"wattio/internal/measure"
	"wattio/internal/nvme"
	"wattio/internal/scenario"
	"wattio/internal/sim"
	"wattio/internal/sweep"
	"wattio/internal/workload"
)

func runOne(sp *scenario.Spec, op device.Op, ps int) (bw, pw float64) {
	eng := sim.NewEngine()
	rng := sim.NewRNG(sp.Seed)
	built, err := sp.BuildDevices(eng, rng, sim.NewRNG(sp.FaultSeed))
	if err != nil {
		log.Fatal(err)
	}
	dev := built[0].Dev
	// Drive the power state through the NVMe admin surface, exactly as
	// nvme-cli would.
	ctrl, err := nvme.NewController(dev)
	if err != nil {
		log.Fatal(err)
	}
	if err := ctrl.SetPowerState(ps); err != nil {
		log.Fatal(err)
	}
	rig, err := measure.NewRig(eng, rng.Stream("rig"), dev, measure.DefaultRigConfig(sweep.RailFor(dev)))
	if err != nil {
		log.Fatal(err)
	}
	rig.Start()
	job, err := sp.Workload.Job(10*time.Second, 2<<30)
	if err != nil {
		log.Fatal(err)
	}
	job.Op = op // part 1 walks both ops over the spec's workload shape
	res := workload.Run(eng, dev, job, rng.Stream("workload"))
	rig.Stop()
	return res.BandwidthMBps, rig.Trace().Mean()
}

func main() {
	specPath := flag.String("scenario", "scenarios/powercap.json", "scenario spec describing the device and workload")
	flag.Parse()
	sp, err := scenario.LoadFile(*specPath)
	if err != nil {
		log.Fatal(err)
	}
	if len(sp.Devices) == 0 || sp.Workload == nil {
		log.Fatalf("%s: powercap needs a scenario with a device and a workload", *specPath)
	}

	fmt.Println("Part 1: power capping hits writes, not reads (Fig. 4)")
	fmt.Printf("%-4s %-22s %-22s\n", "ps", "seq write", "seq read")
	var w0, r0 float64
	for ps := 0; ps < 3; ps++ {
		wb, wp := runOne(sp, device.OpWrite, ps)
		rb, rp := runOne(sp, device.OpRead, ps)
		if ps == 0 {
			w0, r0 = wb, rb
		}
		fmt.Printf("ps%-3d %6.0f MB/s @ %5.2f W  %6.0f MB/s @ %5.2f W   (write %3.0f%%, read %3.0f%% of ps0)\n",
			ps, wb, wp, rb, rp, 100*wb/w0, 100*rb/r0)
	}

	fmt.Println("\nPart 2: asymmetric IO — one uncapped writer, two capped readers")
	eng := sim.NewEngine()
	rng := sim.NewRNG(sp.Seed)
	profile := sp.Devices[0].Profile
	newDev := func(name string) device.Device {
		d, ok := catalog.NewNamed(profile, name, eng, rng.Stream(name))
		if !ok {
			log.Fatalf("unknown profile %q", profile)
		}
		return d
	}
	writer := newDev("w")
	readers := []device.Device{newDev("r1"), newDev("r2")}
	placer, err := adaptive.NewAsymmetricPlacer([]device.Device{writer}, readers, 2)
	if err != nil {
		log.Fatal(err)
	}

	// A 50/50 read/write stream at queue depth 24.
	const total = 3000
	issued, completed := 0, 0
	var issue func()
	issue = func() {
		if issued >= total {
			return
		}
		op := device.OpRead
		if issued%2 == 1 {
			op = device.OpWrite
		}
		off := int64(issued%1024) << 21
		issued++
		placer.Submit(device.Request{Op: op, Offset: off, Size: 256 << 10}, func() {
			completed++
			issue()
		})
	}
	start := eng.Now()
	for i := 0; i < 24; i++ {
		issue()
	}
	var peak float64
	for completed < total {
		if !eng.Step() {
			break
		}
		if p := placer.TotalPower(); p > peak {
			peak = p
		}
	}
	elapsed := eng.Now() - start
	mb := float64(completed) * 256 / 1024 // MiB
	fmt.Printf("mixed stream: %.0f MiB in %v (%.0f MB/s) across 3 devices\n",
		mb, elapsed.Round(time.Millisecond), mb*1.048576/elapsed.Seconds())
	fmt.Printf("peak ensemble power: %.1f W (vs ~45 W for three uncapped devices at full write load)\n", peak)
	fmt.Printf("readers capped at ps2 (10 W each); writer %s uncapped\n", writer.Name())
}
