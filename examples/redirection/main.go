// Redirection: the paper's §4 "power-aware IO redirection" (cf.
// SRCMap). Four mirrored SSDs serve a diurnal read load; a controller
// resizes the active replica set each period so standby replicas
// accumulate slumber time when load is low, and measures what the
// ensemble draw would have been without redirection.
//
// The replica set comes from a scenario spec
// (scenarios/redirection.json by default); run from the repo root, or
// point -scenario at the file.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"wattio/internal/adaptive"
	"wattio/internal/device"
	"wattio/internal/scenario"
	"wattio/internal/sim"
)

func main() {
	specPath := flag.String("scenario", "scenarios/redirection.json", "scenario spec describing the replica set")
	flag.Parse()
	sp, err := scenario.LoadFile(*specPath)
	if err != nil {
		log.Fatal(err)
	}

	eng := sim.NewEngine()
	rng := sim.NewRNG(sp.Seed)
	built, err := sp.BuildDevices(eng, rng, sim.NewRNG(sp.FaultSeed))
	if err != nil {
		log.Fatal(err)
	}
	devs := make([]device.Device, len(built))
	for i, b := range built {
		devs[i] = b.Dev
	}
	mirror, err := adaptive.NewRedirector("mirror", devs, len(devs))
	if err != nil {
		log.Fatal(err)
	}

	// Diurnal load: offered IOPS per 2-second phase (a compressed day).
	phases := []struct {
		iops   int
		active int
	}{
		{4000, 4}, {2500, 3}, {800, 1}, {300, 1}, {800, 2}, {2500, 3}, {4000, 4}, {1200, 2},
	}

	offs := rng.Stream("offsets")
	fmt.Printf("%-7s %-6s %-7s %-9s %-10s %s\n", "phase", "IOPS", "active", "power(W)", "all-awake", "saved")
	var totalSaved float64
	for pi, ph := range phases {
		if err := mirror.SetActive(ph.active); err != nil {
			log.Fatal(err)
		}
		// Let transitions settle, then drive the phase.
		eng.RunUntil(eng.Now() + 700*time.Millisecond)
		phaseEnd := eng.Now() + 2*time.Second
		period := time.Duration(int64(time.Second) / int64(ph.iops))
		e0, t0 := mirror.EnergyJ(), eng.Now()
		var tick func()
		tick = func() {
			if eng.Now() >= phaseEnd {
				return
			}
			off := offs.Int64N(mirror.CapacityBytes()/4096) * 4096
			mirror.Submit(device.Request{Op: device.OpRead, Offset: off, Size: 4096}, func() {})
			eng.After(period, tick)
		}
		tick()
		eng.RunUntil(phaseEnd)
		avgW := (mirror.EnergyJ() - e0) / (eng.Now() - t0).Seconds()
		// Baseline: all replicas awake at idle-or-better draw 0.35 W plus
		// the same active work spread across them.
		baseline := avgW + float64(len(devs)-ph.active)*(0.35-0.17)
		totalSaved += baseline - avgW
		fmt.Printf("%-7d %-6d %-7d %-9.3f %-10.3f %.3f W\n", pi, ph.iops, ph.active, avgW, baseline, baseline-avgW)
	}
	fmt.Printf("\nwake-on-demand events (QoS risk): %d\n", mirror.WakesOnDemand)
	fmt.Printf("average saving across the day: %.3f W per rack unit of %d replicas\n", totalSaved/float64(len(phases)), len(devs))
}
